// Deterministic discrete-event scheduler: the substrate of the fleet
// service. One logical clock (modeled milliseconds), one binary heap of
// pending events, no threads -- driving 10^6 modeled devices costs one
// heap operation per event, not one thread per device. Determinism is
// absolute: events fire in (time, insertion-sequence) order, every random
// decision in the simulation flows from seeds derived with splitmix64,
// and a run with the same seed replays bit-for-bit, so fleet tests
// assert exact counts, not distributions.
#ifndef SDMMON_FLEET_SIM_HPP
#define SDMMON_FLEET_SIM_HPP

#include <cstdint>
#include <queue>
#include <vector>

namespace sdmmon::fleet {

/// Modeled time in milliseconds. The fleet clock is logical: campaign
/// backoff seconds scale by 1000, nothing reads the host clock.
using SimTime = std::uint64_t;

/// One scheduled occurrence. `kind` and the two argument words are
/// interpreted by the receiving actor; keeping events POD (no closures)
/// is what lets a million-device run schedule tens of millions of events
/// without a heap allocation per event.
struct SimEvent {
  SimTime at = 0;
  std::uint64_t seq = 0;  // tie-break: insertion order at equal times
  std::uint32_t kind = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class Simulator;

/// Something that receives events. Actors are borrowed (the owner --
/// service, test, bench -- outlives its simulator).
class SimActor {
 public:
  virtual ~SimActor() = default;
  virtual void on_event(Simulator& sim, const SimEvent& event) = 0;
};

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Total events dispatched so far (the devices/sec denominator).
  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return heap_.size(); }

  void schedule_at(SimTime at, SimActor* actor, std::uint32_t kind,
                   std::uint64_t a = 0, std::uint64_t b = 0);
  void schedule_in(SimTime delay, SimActor* actor, std::uint32_t kind,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
    schedule_at(now_ + delay, actor, kind, a, b);
  }

  /// Dispatch events with at <= deadline (advancing now() to each event's
  /// time, then to the deadline). Returns events dispatched.
  std::uint64_t run_until(SimTime deadline);

  /// Drain the queue completely. `max_events` bounds runaway simulations
  /// (0 = unbounded); returns events dispatched.
  std::uint64_t run(std::uint64_t max_events = 0);

 private:
  struct Entry {
    SimEvent event;
    SimActor* actor;
    /// Min-heap by (time, sequence): std::priority_queue is a max-heap,
    /// so the comparison is reversed.
    bool operator<(const Entry& rhs) const {
      if (event.at != rhs.event.at) return event.at > rhs.event.at;
      return event.seq > rhs.event.seq;
    }
  };

  bool step();

  std::priority_queue<Entry> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

/// splitmix64 step -- the canonical way this codebase derives independent
/// per-entity seeds from (fleet seed, entity id) without correlation.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt);

}  // namespace sdmmon::fleet

#endif  // SDMMON_FLEET_SIM_HPP
