// Per-device attestation reports and their fleet-level aggregation into
// an HSI-style health score. A report is what a device would send up the
// management plane after an install: what it runs (app hash, per-router
// hash parameter -- the SR2 diversity evidence) and how its monitor and
// recovery pipeline have been behaving. Concrete devices fill the stats
// from the observability snapshot (`Registry::snapshot_json()`), i.e.
// the same JSON document a real reporting agent would ship; modeled
// devices fill them from their state machine.
#ifndef SDMMON_FLEET_ATTESTATION_HPP
#define SDMMON_FLEET_ATTESTATION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/device_model.hpp"

namespace sdmmon::obs {
class Registry;
}
namespace sdmmon::protocol {
class NetworkProcessorDevice;
}

namespace sdmmon::fleet {

struct AttestationReport {
  std::uint32_t device_id = 0;
  bool concrete = false;
  std::uint32_t version = 0;           // release the device reports running
  DeviceState state = DeviceState::Enrolled;
  std::string app_hash_hex;            // installed image digest
  std::uint32_t hash_param = 0;        // per-router monitor parameter (SR2)
  // Monitor / recovery stats.
  std::uint64_t packets = 0;
  std::uint64_t attacks = 0;
  std::uint64_t traps = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t reinstalls = 0;
};

/// Fleet-level aggregate the health score is computed from.
struct FleetHealth {
  std::size_t devices = 0;
  std::size_t healthy = 0;       // converged on the target release
  std::size_t in_flight = 0;     // scheduled / backoff / installing / baking
  std::size_t quarantined = 0;
  std::size_t rejected = 0;
  std::size_t unreachable = 0;
  std::size_t rolled_back = 0;

  double convergence() const {
    return devices == 0
               ? 1.0
               : static_cast<double>(healthy) / static_cast<double>(devices);
  }
};

/// 0..100 fleet security/health score. Convergence carries the score;
/// quarantines are weighted hard (each one is a monitor saying the fleet
/// is running something hostile) and delivery failures softly. The
/// formula is deliberately simple and documented -- operators compare
/// scores across rollouts, so stability beats cleverness.
double fleet_health_score(const FleetHealth& health);

/// Attest a concrete device. Stats come from `registry`'s
/// snapshot_json() when it is non-null and observability is compiled in
/// (the document a reporting agent ships; parsed back here exactly as a
/// fleet backend would); otherwise from the engine's aggregate counters.
/// The hash parameter is read from the installed monitor. `app_hash_hex`
/// is left empty -- the caller knows which release image it shipped.
AttestationReport attest_concrete(
    const protocol::NetworkProcessorDevice& device,
    const obs::Registry* registry);

/// Attest a modeled device: stats reflect its state machine (a
/// quarantined device reports the violation burst that tripped it); the
/// hash parameter is the per-device parameter the modeled operator would
/// have drawn for the running version.
AttestationReport attest_modeled(const ModeledDevice& device);

}  // namespace sdmmon::fleet

#endif  // SDMMON_FLEET_ATTESTATION_HPP
