#include "fleet/rollout.hpp"

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace sdmmon::fleet {

const char* halt_reason_name(HaltReason reason) {
  switch (reason) {
    case HaltReason::None: return "none";
    case HaltReason::QuarantineRate: return "quarantine-rate";
    case HaltReason::RejectionRate: return "rejection-rate";
  }
  return "?";
}

std::string release_app_hash_hex(const Release& release) {
  crypto::Sha256 hasher;
  if (!release.binary.text.empty()) {
    hasher.update(release.binary.serialize());
  } else {
    hasher.update(release.app_name);
    std::uint8_t v[4] = {
        static_cast<std::uint8_t>(release.version),
        static_cast<std::uint8_t>(release.version >> 8),
        static_cast<std::uint8_t>(release.version >> 16),
        static_cast<std::uint8_t>(release.version >> 24),
    };
    hasher.update(std::span<const std::uint8_t>(v, 4));
  }
  return util::to_hex(hasher.finish());
}

HaltReason HaltController::evaluate(const WaveStats& wave) const {
  if (wave.installed >= thresholds_.min_sample) {
    double rate = static_cast<double>(wave.quarantined) /
                  static_cast<double>(wave.installed);
    if (rate > thresholds_.max_quarantine_rate) {
      return HaltReason::QuarantineRate;
    }
  }
  if (wave.outcomes() >= thresholds_.min_sample) {
    double rate = static_cast<double>(wave.rejected) /
                  static_cast<double>(wave.outcomes());
    if (rate > thresholds_.max_rejection_rate) {
      return HaltReason::RejectionRate;
    }
  }
  return HaltReason::None;
}

}  // namespace sdmmon::fleet
