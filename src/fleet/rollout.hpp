// Staged-rollout policy objects: the release being shipped, per-wave
// outcome accounting, and the automatic-halt controller that freezes a
// wave when its failure rates say the release (or the fleet's view of
// it) is bad. Pure decision logic -- no scheduling, no devices -- so the
// thresholds are unit-testable and the same controller judges modeled
// and concrete outcomes identically.
#ifndef SDMMON_FLEET_ROLLOUT_HPP
#define SDMMON_FLEET_ROLLOUT_HPP

#include <cstddef>
#include <string>

#include "fleet/device_model.hpp"
#include "isa/program.hpp"

namespace sdmmon::fleet {

/// One fleet release. For the modeled fleet only `version` and
/// `behavior` matter; the concrete sample additionally seals and
/// installs `binary` through the real protocol path. A "poisoned"
/// release is simply one whose behavior (and, for concrete devices,
/// whose traffic mix) drives quarantines.
struct Release {
  std::uint32_t version = 1;
  std::string app_name;
  ReleaseBehavior behavior;
  /// Real binary for the concrete sample (empty text = modeled-only).
  isa::Program binary;
  /// Fraction of attack packets in concrete probe traffic: the concrete
  /// analogue of behavior.quarantine_rate.
  double concrete_attack_rate = 0.0;
};

/// SHA-256 hex of the release's installable image -- the attestation
/// anchor every device reports back. Falls back to hashing
/// (app_name, version) when the release carries no concrete binary.
std::string release_app_hash_hex(const Release& release);

/// Outcome accounting for one wave. `installed` counts devices that
/// activated the release (and is therefore the halt controller's
/// quarantine denominator); `outcomes()` counts devices whose install
/// phase ended either way (the rejection denominator).
struct WaveStats {
  std::size_t targeted = 0;
  std::size_t installed = 0;
  std::size_t healthy = 0;
  std::size_t quarantined = 0;
  std::size_t rejected = 0;
  std::size_t unreachable = 0;
  std::size_t rolled_back = 0;

  std::size_t outcomes() const {
    return installed + rejected + unreachable;
  }
  std::size_t terminal() const {
    return healthy + quarantined + rejected + unreachable + rolled_back;
  }
};

enum class HaltReason : std::uint8_t {
  None,
  QuarantineRate,  // monitors are flagging the installed release
  RejectionRate,   // devices are refusing the packages
};

const char* halt_reason_name(HaltReason reason);

/// Blast-radius thresholds. Rates are evaluated only once `min_sample`
/// devices contribute to the corresponding denominator -- early noise
/// (one canary quarantine out of three installs) must not halt a fleet.
struct HaltThresholds {
  double max_quarantine_rate = 0.02;  // quarantined / installed
  double max_rejection_rate = 0.10;   // rejected / outcomes()
  std::size_t min_sample = 50;
};

class HaltController {
 public:
  explicit HaltController(HaltThresholds thresholds = {})
      : thresholds_(thresholds) {}

  const HaltThresholds& thresholds() const { return thresholds_; }

  /// Judge one wave's running stats; None means keep rolling.
  HaltReason evaluate(const WaveStats& wave) const;

 private:
  HaltThresholds thresholds_;
};

}  // namespace sdmmon::fleet

#endif  // SDMMON_FLEET_ROLLOUT_HPP
