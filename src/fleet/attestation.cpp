#include "fleet/attestation.hpp"

#include <algorithm>
#include <string>

#include "monitor/hash.hpp"
#include "np/mpsoc.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "sdmmon/entities.hpp"

namespace sdmmon::fleet {

double fleet_health_score(const FleetHealth& health) {
  if (health.devices == 0) return 100.0;
  const double n = static_cast<double>(health.devices);
  double score = 100.0 * health.convergence();
  // In-flight devices are not failures: credit them at half weight so a
  // mid-rollout fleet reads "converging", not "broken".
  score += 50.0 * static_cast<double>(health.in_flight) / n;
  // Quarantines are monitor verdicts -- penalize beyond the convergence
  // loss already incurred. Delivery failures cost less: the fleet is
  // stale, not compromised.
  score -= 200.0 * static_cast<double>(health.quarantined) / n;
  score -= 50.0 * static_cast<double>(health.rejected) / n;
  score -= 25.0 * static_cast<double>(health.unreachable) / n;
  // Rolled-back devices are safe (running last-good) but the rollout
  // failed for them.
  score -= 10.0 * static_cast<double>(health.rolled_back) / n;
  return std::clamp(score, 0.0, 100.0);
}

namespace {

// Sum all counters named "<prefix>.<core>" in a snapshot's counter map.
std::uint64_t sum_prefixed(const obs::JsonValue& counters,
                           const std::string& prefix) {
  std::uint64_t total = 0;
  const std::string dotted = prefix + ".";
  for (const auto& [name, value] : counters.members()) {
    if (name.rfind(dotted, 0) == 0) {
      total += static_cast<std::uint64_t>(value.as_int());
    }
  }
  return total;
}

std::uint64_t counter_or_zero(const obs::JsonValue& counters,
                              const std::string& name) {
  if (!counters.has(name)) return 0;
  return static_cast<std::uint64_t>(counters.at(name).as_int());
}

}  // namespace

AttestationReport attest_concrete(
    const protocol::NetworkProcessorDevice& device,
    const obs::Registry* registry) {
  AttestationReport report;
  report.concrete = true;
  report.state = DeviceState::Enrolled;

  if (const auto* merkle = dynamic_cast<const monitor::MerkleTreeHash*>(
          &device.mpsoc().core(0).monitor().hash())) {
    report.hash_param = merkle->parameter();
  }

  bool from_snapshot = false;
#if SDMMON_OBS_ENABLED
  if (registry != nullptr) {
    // Parse the registry's own JSON snapshot -- the exact document a
    // device-side reporting agent would ship to the fleet backend.
    const obs::JsonValue doc = obs::JsonValue::parse(registry->snapshot_json());
    const obs::JsonValue& counters = doc.at("counters");
    report.packets = sum_prefixed(counters, obs::names::kCorePackets);
    report.attacks = sum_prefixed(counters, obs::names::kCoreAttacks);
    report.traps = sum_prefixed(counters, obs::names::kCoreTraps);
    report.quarantines =
        counter_or_zero(counters, obs::names::kEngineQuarantines);
    report.reinstalls =
        counter_or_zero(counters, obs::names::kEngineReinstalls);
    from_snapshot = true;
  }
#else
  (void)registry;
#endif
  if (!from_snapshot) {
    const np::MpsocStats stats = device.mpsoc().aggregate_stats();
    report.packets = stats.packets;
    report.attacks = stats.attacks_detected;
    report.traps = stats.traps;
    report.quarantines = stats.quarantine_events;
    report.reinstalls = stats.reinstalls;
  }
  return report;
}

AttestationReport attest_modeled(const ModeledDevice& device) {
  AttestationReport report;
  report.device_id = device.id;
  report.concrete = false;
  report.version = device.version;
  report.state = device.state;
  // The per-device hash parameter the modeled operator would have drawn
  // for this (device, version) pairing: deterministic, version-diverse --
  // the SR2 property the fleet backend audits for.
  report.hash_param = static_cast<std::uint32_t>(
      mix_seed(device.seed, 0x5122'0000ull + device.version));
  if (device.state == DeviceState::Quarantined) {
    // A quarantined modeled device reports the violation burst that
    // tripped its monitor.
    report.attacks = 1;
    report.quarantines = 1;
  }
  return report;
}

}  // namespace sdmmon::fleet
