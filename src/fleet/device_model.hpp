// The modeled device: a ~48-byte state machine standing in for one
// router in a 10^5..10^6-device fleet. A modeled device does not run
// packets or crypto -- it walks the same install-protocol state space the
// real NetworkProcessorDevice walks (attempt, lose, reject, install,
// bake, quarantine, roll back), with every probabilistic transition drawn
// from a deterministic per-device stream seeded by (fleet seed, id). The
// retry schedule is the *real* operator schedule: protocol::RetryPolicy
// with per-device jitter, evaluated through the same retry_backoff_s the
// FleetOperator uses, so fleet-scale conclusions about retry storms and
// convergence transfer to the concrete path.
#ifndef SDMMON_FLEET_DEVICE_MODEL_HPP
#define SDMMON_FLEET_DEVICE_MODEL_HPP

#include <cstdint>

#include "fleet/sim.hpp"

namespace sdmmon::fleet {

/// Release channels, fwupd/LVFS-style: canary devices absorb a new
/// release first, beta widens the sample, stable is the long tail. A
/// device's channel is a deterministic function of (fleet seed, id), so
/// the same fleet always partitions the same way.
enum class ReleaseChannel : std::uint8_t { Canary, Beta, Stable };

const char* release_channel_name(ReleaseChannel channel);

/// Where a device stands in the current rollout.
enum class DeviceState : std::uint8_t {
  Enrolled,     // not (yet) targeted, running its current version
  Scheduled,    // install attempt queued by an open wave
  Backoff,      // attempt failed transiently; jittered retry pending
  Installing,   // package accepted; modeled install pipeline in flight
  Baking,       // new version live; health observation window running
  Healthy,      // converged: bake window passed without violations
  Quarantined,  // monitor flagged the release on this device
  Rejected,     // permanent rejection (bad signature/cert class)
  Unreachable,  // retry schedule exhausted without a delivery
  RolledBack,   // halt controller re-imaged it to last-good
};

const char* device_state_name(DeviceState state);

/// True for states that end a device's participation in its wave (the
/// wave-completion and halt arithmetic counts these).
bool device_state_terminal(DeviceState state);

/// Per-release failure characteristics as experienced by one modeled
/// device -- the modeled equivalent of what a poisoned binary, a broken
/// operator certificate, or a flaky management link does to the real
/// install path. All rates are probabilities in [0, 1].
struct ReleaseBehavior {
  double reject_rate = 0.0;      // permanent rejection per delivery
  double loss_rate = 0.0;        // per-attempt channel loss
  /// Probability the monitor flags the release during one full bake
  /// window (sampled in kBakeSlices slices so a behavior change mid-bake
  /// -- a slow-roll attack -- affects devices already baking).
  double quarantine_rate = 0.0;
  SimTime install_ms = 1500;     // modeled install-pipeline latency
  SimTime bake_ms = 30'000;      // health observation after install
};

/// Bake windows are sampled in this many slices (see quarantine_rate).
inline constexpr std::uint32_t kBakeSlices = 4;

struct ModeledDevice {
  std::uint64_t seed = 0;     // mix_seed(fleet seed, id)
  std::uint32_t id = 0;
  std::uint32_t version = 0;  // running release (0 = factory image)
  std::uint32_t last_good = 0;
  std::uint32_t draws = 0;    // per-device draw counter (determinism)
  std::uint16_t region = 0;
  std::uint16_t wave = 0;     // wave that targeted it in this rollout
  std::uint8_t attempts = 0;
  ReleaseChannel channel = ReleaseChannel::Stable;
  DeviceState state = DeviceState::Enrolled;
  float backoff_spent_s = 0;  // retry budget consumed this campaign

  /// Next deterministic draw in [0, 1). Consuming a draw advances only
  /// this device's stream; devices are mutually independent.
  double uniform();
  bool chance(double p) { return uniform() < p; }

  /// Key feeding protocol::retry_backoff_s -- the same jitter mechanism
  /// the concrete FleetOperator schedule uses.
  std::uint64_t backoff_key() const;

  /// Reset campaign-scoped fields when a new rollout targets the device.
  void begin_campaign(std::uint16_t wave_index);
};

}  // namespace sdmmon::fleet

#endif  // SDMMON_FLEET_DEVICE_MODEL_HPP
