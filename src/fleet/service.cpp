#include "fleet/service.hpp"

#include <algorithm>
#include <cmath>

#include "obs/names.hpp"
#include "sdmmon/workload.hpp"

namespace sdmmon::fleet {

namespace {

// Event kinds on the fleet simulator. Rollout events carry the rollout
// epoch in `b`; a halt bumps the epoch, so everything the halted rollout
// left in the heap no-ops on dispatch -- O(1) cancellation of millions
// of in-flight events.
enum : std::uint32_t {
  kEvWaveOpen = 1,
  kEvAttempt,
  kEvInstalled,
  kEvBakeSlice,   // a = device | (slice << 32)
  kEvRollback,
  kEvBehaviorChange,  // a = index into behavior_changes_; not epoch-gated
};

constexpr std::uint16_t kNoWave = 0xFFFF;

double to_unit(std::uint64_t v) {
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

}  // namespace

std::unique_ptr<FleetSimObs> FleetSimObs::create(obs::Registry& registry) {
  auto obs = std::make_unique<FleetSimObs>();
  obs->registry = &registry;
  obs->journal = &registry.journal();
  obs->devices = &registry.gauge(obs::names::kFleetSimDevices);
  obs->converged = &registry.gauge(obs::names::kFleetSimConverged);
  obs->wave = &registry.gauge(obs::names::kFleetRolloutWave);
  obs->health_score = &registry.gauge(obs::names::kFleetHealthScore);
  obs->installs = &registry.counter(obs::names::kFleetSimInstalls);
  obs->rejections = &registry.counter(obs::names::kFleetSimRejections);
  obs->quarantines = &registry.counter(obs::names::kFleetSimQuarantines);
  obs->unreachable = &registry.counter(obs::names::kFleetSimUnreachable);
  obs->rollbacks = &registry.counter(obs::names::kFleetSimRollbacks);
  obs->halts = &registry.counter(obs::names::kFleetRolloutHalts);
  return obs;
}

FleetService::FleetService(Simulator& sim, FleetConfig config)
    : sim_(sim), config_(std::move(config)), controller_(config_.halt) {
  fleet_.resize(config_.devices);
  for (std::size_t id = 0; id < fleet_.size(); ++id) {
    ModeledDevice& dev = fleet_[id];
    dev.seed = mix_seed(config_.seed, id);
    dev.id = static_cast<std::uint32_t>(id);
    dev.region = static_cast<std::uint16_t>(
        mix_seed(config_.seed, 0xBE610000ull + id) %
        std::max<std::uint32_t>(1, config_.regions));
    const double frac = rank_fraction(id);
    dev.channel = frac < config_.canary_fraction ? ReleaseChannel::Canary
                  : frac < config_.canary_fraction + config_.beta_fraction
                      ? ReleaseChannel::Beta
                      : ReleaseChannel::Stable;
  }

  if (config_.concrete_sample > 0) {
    manufacturer_ = std::make_unique<protocol::Manufacturer>(
        "fleet-mfr", config_.concrete_key_bits, crypto::Drbg("fleet-mfr"));
    operator_ = std::make_unique<protocol::NetworkOperator>(
        "fleet-op", config_.concrete_key_bits, crypto::Drbg("fleet-op"));
    // Certificate window covers the whole modeled campaign horizon.
    operator_->accept_certificate(manufacturer_->certify_operator(
        operator_->name(), operator_->public_key(),
        config_.concrete_epoch_s - 10, config_.concrete_epoch_s + 86'400));
    const std::size_t slots =
        std::min(config_.concrete_sample, fleet_.size());
    concrete_.resize(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      ConcreteSlot& slot = concrete_[i];
      slot.device = manufacturer_->provision_device(
          "fleet-dev-" + std::to_string(i), config_.concrete_cores,
          config_.concrete_recovery);
      slot.registry = std::make_unique<obs::Registry>();
      slot.device->mpsoc().enable_obs(*slot.registry,
                                      static_cast<std::uint32_t>(i));
    }
  }

  if (config_.registry != nullptr) {
#if SDMMON_OBS_ENABLED
    obs_ = FleetSimObs::create(*config_.registry);
    obs_->devices->set(static_cast<std::int64_t>(fleet_.size()));
#endif
  }
}

FleetService::~FleetService() = default;

double FleetService::rank_fraction(std::size_t id) const {
  return to_unit(mix_seed(config_.seed, 0xAA110000ull + id));
}

protocol::NetworkProcessorDevice& FleetService::concrete_device(
    std::size_t slot) {
  return *concrete_.at(slot).device;
}

const obs::Registry& FleetService::concrete_registry(std::size_t slot) const {
  return *concrete_.at(slot).registry;
}

void FleetService::start_rollout(Release release) {
  release_ = std::move(release);
  running_ = true;
  halted_ = false;
  halt_reason_ = HaltReason::None;
  halted_wave_ = 0;
  halt_time_ms_ = 0;
  pending_rollbacks_ = 0;
  rollbacks_done_ = 0;
  ++rollout_epoch_;
  current_wave_ = 0;
  waves_.assign(config_.wave_fractions.size(), WaveStats{});
  wave_open_ms_.assign(config_.wave_fractions.size(), 0);
  tally_targeted_ = tally_healthy_ = tally_quarantined_ = 0;
  tally_rejected_ = tally_unreachable_ = tally_rolled_back_ = 0;
  tally_in_flight_ = 0;
  reached_t90_ = false;
  t90_ms_ = 0;
  concrete_active_ =
      !concrete_.empty() && !release_.binary.text.empty();

  for (std::size_t id = 0; id < fleet_.size(); ++id) {
    ModeledDevice& dev = fleet_[id];
    const double frac = rank_fraction(id);
    dev.wave = kNoWave;
    for (std::size_t w = 0; w < config_.wave_fractions.size(); ++w) {
      if (frac < config_.wave_fractions[w]) {
        dev.wave = static_cast<std::uint16_t>(w);
        break;
      }
    }
    if (dev.wave == kNoWave) {
      continue;  // outside the rollout's final fraction
    }
    dev.state = DeviceState::Enrolled;  // wave-open schedules the attempt
    ++waves_[dev.wave].targeted;
    ++tally_targeted_;
  }

  sim_.schedule_in(0, this, kEvWaveOpen, 0, rollout_epoch_);
  update_health_gauges();
}

void FleetService::schedule_outage(const Outage& outage) {
  outages_.push_back({outage, util::FaultInjector(outage.faults)});
}

void FleetService::schedule_behavior_change(SimTime at,
                                            ReleaseBehavior behavior) {
  behavior_changes_.push_back(behavior);
  sim_.schedule_at(at, this, kEvBehaviorChange,
                   behavior_changes_.size() - 1, 0);
}

util::FaultInjector* FleetService::active_outage(std::uint16_t region,
                                                 SimTime now) {
  for (auto& outage : outages_) {
    if (outage.spec.region == region && outage.spec.start_ms <= now &&
        now < outage.spec.end_ms) {
      return &outage.injector;
    }
  }
  return nullptr;
}

void FleetService::on_event(Simulator& sim, const SimEvent& event) {
  if (event.kind == kEvBehaviorChange) {
    release_.behavior = behavior_changes_.at(event.a);
    return;
  }
  if (!epoch_ok(event)) return;  // event from a halted rollout
  switch (event.kind) {
    case kEvWaveOpen:
      open_wave(sim, static_cast<std::uint16_t>(event.a));
      break;
    case kEvAttempt:
      handle_attempt(sim, event.a);
      break;
    case kEvInstalled:
      handle_installed(sim, event.a);
      break;
    case kEvBakeSlice:
      handle_bake_slice(sim, event.a & 0xFFFFFFFFull,
                        static_cast<std::uint32_t>(event.a >> 32));
      break;
    case kEvRollback:
      handle_rollback(sim, event.a);
      break;
    default:
      break;
  }
}

void FleetService::open_wave(Simulator& sim, std::uint16_t wave) {
  current_wave_ = wave;
  wave_open_ms_[wave] = sim.now();
  const std::size_t count = waves_[wave].targeted;
#if SDMMON_OBS_ENABLED
  if (obs_ != nullptr) {
    obs_->wave->set(wave);
    obs_->journal->record({obs::EventKind::RolloutWave, sim.now(),
                           obs::kAllCores, wave, count});
  }
#endif
  if (count == 0) {
    maybe_advance_wave(sim);
    return;
  }
  // Spread the wave's first attempts uniformly over the ramp window.
  std::size_t position = 0;
  for (std::size_t id = 0; id < fleet_.size(); ++id) {
    ModeledDevice& dev = fleet_[id];
    if (dev.wave != wave) continue;
    dev.begin_campaign(wave);
    ++tally_in_flight_;
    const SimTime offset = config_.wave_ramp_ms * position / count;
    ++position;
    sim.schedule_in(offset, this, kEvAttempt, id, rollout_epoch_);
  }
  update_health_gauges();
}

void FleetService::handle_attempt(Simulator& sim, std::size_t id) {
  ModeledDevice& dev = fleet_[id];
  if (halted_ || (dev.state != DeviceState::Scheduled &&
                  dev.state != DeviceState::Backoff)) {
    return;
  }
  if (is_concrete(id)) {
    attempt_concrete(sim, id);
  } else {
    attempt_modeled(sim, id);
  }
}

void FleetService::attempt_modeled(Simulator& sim, std::size_t id) {
  ModeledDevice& dev = fleet_[id];
  ++dev.attempts;
  bool lost;
  if (util::FaultInjector* injector = active_outage(dev.region, sim.now())) {
    lost = injector->drop_message();
  } else {
    lost = dev.chance(release_.behavior.loss_rate);
  }
  if (lost) {
    schedule_retry(sim, dev, dev.backoff_key());
    return;
  }
  if (dev.chance(release_.behavior.reject_rate)) {
    finish_install_phase(sim, id, DeviceState::Rejected);
    return;
  }
  dev.state = DeviceState::Installing;
  sim.schedule_in(release_.behavior.install_ms, this, kEvInstalled, id,
                  rollout_epoch_);
}

void FleetService::attempt_concrete(Simulator& sim, std::size_t id) {
  ModeledDevice& dev = fleet_[id];
  ConcreteSlot& slot = concrete_[id];
  ++dev.attempts;
  const std::uint64_t key =
      protocol::device_backoff_key(slot.device->name());
  if (util::FaultInjector* injector = active_outage(dev.region, sim.now())) {
    if (injector->drop_message()) {
      schedule_retry(sim, dev, key);
      return;
    }
  }
  // Real sealing, real wire bytes, real device-side verdict -- the same
  // per-attempt re-sealing discipline the FleetOperator uses.
  protocol::WirePackage wire = operator_->program_device(
      release_.binary, slot.device->public_key());
  protocol::ChannelResult result =
      direct_channel_.send_install(*slot.device, wire, protocol_now(sim));
  if (result.status != protocol::ChannelStatus::Delivered) {
    schedule_retry(sim, dev, key);
    return;
  }
  if (result.install_status == protocol::InstallStatus::Ok) {
    dev.state = DeviceState::Installing;
    sim.schedule_in(release_.behavior.install_ms, this, kEvInstalled, id,
                    rollout_epoch_);
    return;
  }
  if (protocol::install_status_permanent(result.install_status)) {
    finish_install_phase(sim, id, DeviceState::Rejected);
    return;
  }
  schedule_retry(sim, dev, key);  // transient damage: retry fresh
}

void FleetService::schedule_retry(Simulator& sim, ModeledDevice& dev,
                                  std::uint64_t backoff_key) {
  if (dev.attempts >= config_.retry.max_attempts) {
    finish_install_phase(sim, dev.id, DeviceState::Unreachable);
    return;
  }
  const double gap = protocol::retry_backoff_s(config_.retry, backoff_key,
                                               dev.attempts - 1);
  if (dev.backoff_spent_s + gap > config_.retry.backoff_budget_s) {
    finish_install_phase(sim, dev.id, DeviceState::Unreachable);
    return;
  }
  dev.backoff_spent_s += static_cast<float>(gap);
  dev.state = DeviceState::Backoff;
  sim.schedule_in(static_cast<SimTime>(gap * 1000.0), this, kEvAttempt,
                  dev.id, rollout_epoch_);
}

void FleetService::finish_install_phase(Simulator& sim, std::size_t id,
                                        DeviceState terminal_state) {
  ModeledDevice& dev = fleet_[id];
  dev.state = terminal_state;
  if (terminal_state == DeviceState::Rejected) {
    ++waves_[dev.wave].rejected;
    ++tally_rejected_;
#if SDMMON_OBS_ENABLED
    if (obs_ != nullptr) obs_->rejections->add(1);
#endif
  } else {
    ++waves_[dev.wave].unreachable;
    ++tally_unreachable_;
#if SDMMON_OBS_ENABLED
    if (obs_ != nullptr) obs_->unreachable->add(1);
#endif
  }
  note_terminal(sim, dev);
  check_halt(sim);
}

void FleetService::handle_installed(Simulator& sim, std::size_t id) {
  ModeledDevice& dev = fleet_[id];
  if (halted_ || dev.state != DeviceState::Installing) return;
  dev.last_good = dev.version;
  dev.version = release_.version;
  dev.state = DeviceState::Baking;
  ++waves_[dev.wave].installed;
#if SDMMON_OBS_ENABLED
  if (obs_ != nullptr) obs_->installs->add(1);
#endif
  if (is_concrete(id)) {
    ConcreteSlot& slot = concrete_[id];
    if (slot.has_current) {
      slot.last_good_binary = slot.current_binary;
      slot.has_last_good = true;
    }
    slot.current_binary = release_.binary;
    slot.has_current = true;
  }
  sim.schedule_in(release_.behavior.bake_ms / kBakeSlices, this,
                  kEvBakeSlice, id, rollout_epoch_);
}

void FleetService::handle_bake_slice(Simulator& sim, std::size_t id,
                                     std::uint32_t slice) {
  ModeledDevice& dev = fleet_[id];
  if (halted_ || dev.state != DeviceState::Baking) return;
  bool quarantined;
  if (is_concrete(id)) {
    // Run a probe slice of real traffic through the real monitors; the
    // release's attack rate decides whether the monitors see violations.
    ConcreteSlot& slot = concrete_[id];
    protocol::MixedWorkloadConfig wc;
    wc.seed = mix_seed(dev.seed, 0x9B0Bu);
    wc.attack_rate = release_.concrete_attack_rate;
    wc.attack_packet = config_.attack_packet;
    protocol::MixedWorkload workload(wc);
    for (std::size_t n = 0; n < config_.concrete_probe_packets; ++n) {
      protocol::WorkItem item = workload.item(slot.probe_cursor++);
      slot.device->process_packet(item.packet, item.flow_key);
    }
    quarantined =
        slot.device->mpsoc().aggregate_stats().quarantined_cores > 0;
  } else {
    // Behavior is re-read on every slice, so a slow-roll behavior change
    // catches devices already mid-bake.
    quarantined = dev.chance(release_.behavior.quarantine_rate /
                             static_cast<double>(kBakeSlices));
  }
  if (quarantined) {
    mark_quarantined(sim, dev);
    check_halt(sim);
    return;
  }
  if (slice + 1 >= kBakeSlices) {
    dev.state = DeviceState::Healthy;
    ++waves_[dev.wave].healthy;
    ++tally_healthy_;
    note_terminal(sim, dev);
    return;
  }
  const std::uint64_t next =
      static_cast<std::uint64_t>(id) |
      (static_cast<std::uint64_t>(slice + 1) << 32);
  sim.schedule_in(release_.behavior.bake_ms / kBakeSlices, this,
                  kEvBakeSlice, next, rollout_epoch_);
}

void FleetService::mark_quarantined(Simulator& sim, ModeledDevice& dev) {
  dev.state = DeviceState::Quarantined;
  ++waves_[dev.wave].quarantined;
  ++tally_quarantined_;
#if SDMMON_OBS_ENABLED
  if (obs_ != nullptr) obs_->quarantines->add(1);
#endif
  note_terminal(sim, dev);
}

void FleetService::note_terminal(Simulator& sim, ModeledDevice& dev) {
  (void)dev;
  --tally_in_flight_;
  if (!reached_t90_ && tally_healthy_ * 10 >= fleet_.size() * 9) {
    reached_t90_ = true;
    t90_ms_ = sim.now();
  }
  update_health_gauges();
  maybe_advance_wave(sim);
}

void FleetService::check_halt(Simulator& sim) {
  if (halted_ || !running_) return;
  const HaltReason reason = controller_.evaluate(waves_[current_wave_]);
  if (reason != HaltReason::None) halt_rollout(sim, reason);
}

void FleetService::halt_rollout(Simulator& sim, HaltReason reason) {
  halted_ = true;
  halt_reason_ = reason;
  halted_wave_ = current_wave_;
  halt_time_ms_ = sim.now();
  ++rollout_epoch_;  // every in-flight rollout event is now stale
#if SDMMON_OBS_ENABLED
  if (obs_ != nullptr) {
    obs_->halts->add(1);
    obs_->journal->record({obs::EventKind::RolloutHalt, sim.now(),
                           obs::kAllCores, halted_wave_,
                           static_cast<std::uint64_t>(reason)});
  }
#endif
  // Devices that never activated the release go back to Enrolled; devices
  // that did (Baking / Healthy / Quarantined on this version) are the
  // blast radius and get rolled back to last-good.
  std::size_t affected = 0;
  for (ModeledDevice& dev : fleet_) {
    switch (dev.state) {
      case DeviceState::Scheduled:
      case DeviceState::Backoff:
      case DeviceState::Installing:
        dev.state = DeviceState::Enrolled;
        --tally_in_flight_;
        break;
      case DeviceState::Baking:
      case DeviceState::Healthy:
      case DeviceState::Quarantined:
        if (dev.version == release_.version) ++affected;
        break;
      default:
        break;
    }
  }
  pending_rollbacks_ = affected;
  if (affected == 0) {
    update_health_gauges();
    return;
  }
  std::size_t position = 0;
  for (std::size_t id = 0; id < fleet_.size(); ++id) {
    ModeledDevice& dev = fleet_[id];
    const bool activated = dev.version == release_.version &&
                           (dev.state == DeviceState::Baking ||
                            dev.state == DeviceState::Healthy ||
                            dev.state == DeviceState::Quarantined);
    if (!activated) continue;
    const SimTime offset = config_.rollback_ramp_ms * position / affected;
    ++position;
    sim.schedule_in(offset, this, kEvRollback, id, rollout_epoch_);
  }
  update_health_gauges();
}

void FleetService::handle_rollback(Simulator& sim, std::size_t id) {
  ModeledDevice& dev = fleet_[id];
  WaveStats& wave = waves_[dev.wave];
  switch (dev.state) {
    case DeviceState::Baking:
      --tally_in_flight_;
      break;
    case DeviceState::Healthy:
      --tally_healthy_;
      --wave.healthy;
      break;
    case DeviceState::Quarantined:
      --tally_quarantined_;
      --wave.quarantined;
      break;
    default:
      return;  // already resolved some other way
  }
  dev.version = dev.last_good;
  dev.state = DeviceState::RolledBack;
  ++wave.rolled_back;
  ++tally_rolled_back_;
  ++rollbacks_done_;
  --pending_rollbacks_;
#if SDMMON_OBS_ENABLED
  if (obs_ != nullptr) obs_->rollbacks->add(1);
#endif
  if (is_concrete(id)) {
    // Real recovery: release quarantined cores, re-image last-good.
    ConcreteSlot& slot = concrete_[id];
    np::Mpsoc& soc = slot.device->mpsoc();
    for (std::size_t c = 0; c < soc.num_cores(); ++c) {
      if (soc.core_health(c) == np::CoreHealth::Quarantined) {
        soc.release_core(c);
      }
    }
    if (slot.has_last_good) {
      protocol::WirePackage wire = operator_->program_device(
          slot.last_good_binary, slot.device->public_key());
      (void)direct_channel_.send_install(*slot.device, wire,
                                         protocol_now(sim));
      slot.current_binary = slot.last_good_binary;
    }
  }
  update_health_gauges();
  if (pending_rollbacks_ == 0) {
#if SDMMON_OBS_ENABLED
    if (obs_ != nullptr) {
      obs_->journal->record({obs::EventKind::RolloutRollback, sim.now(),
                             obs::kAllCores, halted_wave_,
                             rollbacks_done_});
    }
#endif
    running_ = false;
  }
}

void FleetService::maybe_advance_wave(Simulator& sim) {
  if (halted_ || !running_) return;
  const WaveStats& wave = waves_[current_wave_];
  if (wave.terminal() < wave.targeted) return;
  if (current_wave_ + 1 < waves_.size()) {
    sim.schedule_in(config_.wave_gap_ms, this, kEvWaveOpen,
                    current_wave_ + 1, rollout_epoch_);
  } else {
    running_ = false;
  }
}

bool FleetService::rollout_done() const {
  return halted_ ? pending_rollbacks_ == 0 : !running_;
}

FleetHealth FleetService::health() const {
  FleetHealth health;
  health.devices = fleet_.size();
  health.healthy = tally_healthy_;
  health.in_flight = tally_in_flight_;
  health.quarantined = tally_quarantined_;
  health.rejected = tally_rejected_;
  health.unreachable = tally_unreachable_;
  health.rolled_back = tally_rolled_back_;
  return health;
}

void FleetService::update_health_gauges() {
#if SDMMON_OBS_ENABLED
  if (obs_ == nullptr) return;
  obs_->converged->set(static_cast<std::int64_t>(tally_healthy_));
  obs_->health_score->set(
      static_cast<std::int64_t>(std::lround(fleet_health_score(health()))));
#endif
}

RolloutReport FleetService::report() const {
  RolloutReport report;
  report.halted = halted_;
  report.halt_reason = halt_reason_;
  report.halted_wave = halted_wave_;
  report.halt_time_ms = halt_time_ms_;
  report.halt_detect_ms =
      halted_ ? halt_time_ms_ - wave_open_ms_[halted_wave_] : 0;
  std::size_t affected = 0;
  for (const WaveStats& wave : waves_) affected += wave.installed;
  report.affected = halted_ ? affected : 0;
  report.rollbacks = rollbacks_done_;
  report.reached_t90 = reached_t90_;
  report.t90_ms = t90_ms_;
  report.waves = waves_;
  report.health = health();
  report.health_score = fleet_health_score(report.health);
  return report;
}

AttestationReport FleetService::attest(std::size_t id) const {
  const ModeledDevice& dev = fleet_.at(id);
  if (concrete_active_ && id < concrete_.size()) {
    AttestationReport report = attest_concrete(*concrete_[id].device,
                                               concrete_[id].registry.get());
    report.device_id = dev.id;
    report.version = dev.version;
    report.state = dev.state;
    report.app_hash_hex = release_app_hash_hex(release_);
    return report;
  }
  AttestationReport report = attest_modeled(dev);
  if (dev.version == release_.version) {
    report.app_hash_hex = release_app_hash_hex(release_);
  }
  return report;
}

}  // namespace sdmmon::fleet
