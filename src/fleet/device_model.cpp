#include "fleet/device_model.hpp"

namespace sdmmon::fleet {

const char* release_channel_name(ReleaseChannel channel) {
  switch (channel) {
    case ReleaseChannel::Canary: return "canary";
    case ReleaseChannel::Beta: return "beta";
    case ReleaseChannel::Stable: return "stable";
  }
  return "?";
}

const char* device_state_name(DeviceState state) {
  switch (state) {
    case DeviceState::Enrolled: return "enrolled";
    case DeviceState::Scheduled: return "scheduled";
    case DeviceState::Backoff: return "backoff";
    case DeviceState::Installing: return "installing";
    case DeviceState::Baking: return "baking";
    case DeviceState::Healthy: return "healthy";
    case DeviceState::Quarantined: return "quarantined";
    case DeviceState::Rejected: return "rejected";
    case DeviceState::Unreachable: return "unreachable";
    case DeviceState::RolledBack: return "rolled-back";
  }
  return "?";
}

bool device_state_terminal(DeviceState state) {
  switch (state) {
    case DeviceState::Healthy:
    case DeviceState::Quarantined:
    case DeviceState::Rejected:
    case DeviceState::Unreachable:
    case DeviceState::RolledBack:
      return true;
    default:
      return false;
  }
}

double ModeledDevice::uniform() {
  // One splitmix step per draw: stateless apart from the counter, so a
  // device's decision sequence depends only on (seed, draw index) -- not
  // on event interleaving with other devices.
  const std::uint64_t v = mix_seed(seed, ++draws);
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

std::uint64_t ModeledDevice::backoff_key() const {
  return mix_seed(seed, 0xB0FFu);
}

void ModeledDevice::begin_campaign(std::uint16_t wave_index) {
  wave = wave_index;
  attempts = 0;
  backoff_spent_s = 0;
  state = DeviceState::Scheduled;
}

}  // namespace sdmmon::fleet
