#include "fleet/sim.hpp"

namespace sdmmon::fleet {

void Simulator::schedule_at(SimTime at, SimActor* actor, std::uint32_t kind,
                            std::uint64_t a, std::uint64_t b) {
  // Scheduling into the past would reorder the already-dispatched prefix;
  // clamp to now so a zero-delay event still runs after the current one.
  if (at < now_) at = now_;
  heap_.push(Entry{SimEvent{at, next_seq_++, kind, a, b}, actor});
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.event.at;
  ++executed_;
  entry.actor->on_event(*this, entry.event);
  return true;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t dispatched = 0;
  while (!heap_.empty() && heap_.top().event.at <= deadline) {
    step();
    ++dispatched;
  }
  if (now_ < deadline) now_ = deadline;
  return dispatched;
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t dispatched = 0;
  while (max_events == 0 || dispatched < max_events) {
    if (!step()) break;
    ++dispatched;
  }
  return dispatched;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace sdmmon::fleet
