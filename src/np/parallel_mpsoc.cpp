#include "np/parallel_mpsoc.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace sdmmon::np {

namespace {

/// Yield for a while, then sleep in short slices (same policy as
/// util::SpscQueue's backoff; see the rationale there).
struct Backoff {
  int spins = 0;
  void pause() {
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() { spins = 0; }
};

}  // namespace

ParallelMpsoc::ParallelMpsoc(std::size_t num_cores, DispatchPolicy policy,
                             RecoveryConfig recovery, ParallelConfig parallel)
    : cores_(num_cores),
      last_good_(num_cores),
      policy_(policy),
      recovery_(num_cores, recovery),
      config_(parallel) {
  config_.batch_size = std::max<std::size_t>(config_.batch_size, 1);
  config_.ingest_depth = std::max<std::size_t>(config_.ingest_depth, 1);
  capture_spec_ =
      recovery_.config().policy != RecoveryPolicy::ResetAndContinue;
  rob_size_ = config_.batch_size;
  rob_ = std::make_unique<Slot[]>(rob_size_);

  next_ticket_.assign(num_cores, 0);
  planned_pkts_.assign(num_cores, 0);
  committed_instr_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_cores);
  committed_pkts_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_cores);
  core_turn_ = std::make_unique<std::atomic<std::uint64_t>[]>(num_cores);
  for (std::size_t c = 0; c < num_cores; ++c) {
    committed_instr_[c].store(0, std::memory_order_relaxed);
    committed_pkts_[c].store(0, std::memory_order_relaxed);
    core_turn_[c].store(0, std::memory_order_relaxed);
  }

  std::size_t workers = config_.workers == 0 ? num_cores : config_.workers;
  workers = std::min(std::max<std::size_t>(workers, num_cores > 0 ? 1 : 0),
                     num_cores);
  deques_.reserve(workers);
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    // A shard's ring must hold every in-flight packet (epoch re-plans can
    // land the whole window on one shard); the ingest_depth headroom
    // keeps the planner's push wait-free in practice.
    deques_.push_back(std::make_unique<util::StealingDeque<std::uint64_t>>(
        rob_size_ * config_.ingest_depth + 1));
  }
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelMpsoc::~ParallelMpsoc() {
  flush();
  stop_.store(true, std::memory_order_release);
  epoch_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

// ---------------------------------------------------------------------
// Workers: pop own shard first, steal oldest from others, fold greedily
// ---------------------------------------------------------------------

void ParallelMpsoc::worker_main(std::size_t worker) {
  Backoff idle;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    if (epoch_requested_.load(std::memory_order_acquire)) {
      park_for_epoch();
      idle.reset();
      continue;
    }
    std::uint64_t seq;
    if (pop_work(worker, seq)) {
      execute_slot(seq);
      try_fold();
      idle.reset();
    } else {
      // Idle workers still fold: when every core is quarantined, slots
      // are born Executed (undispatched) and nobody else may be around
      // to retire them.
      try_fold();
      idle.pause();
    }
  }
}

bool ParallelMpsoc::pop_work(std::size_t worker, std::uint64_t& seq) {
  if (deques_[worker]->try_pop(seq)) return true;
  const std::size_t shards = deques_.size();
  for (std::size_t i = 1; i < shards; ++i) {
    if (deques_[(worker + i) % shards]->try_pop(seq)) {
#if SDMMON_OBS_ENABLED
      if (EngineObs* obs = eobs()) obs->shard_steals->add(1);
#endif
      return true;
    }
  }
  return false;
}

void ParallelMpsoc::run_slot(Slot& slot) {
  MonitoredCore& core = cores_[slot.core];
  if (capture_spec_) core.begin_speculation();
  if (core.installed()) {
    slot.result = core.execute_packet(slot.item->data);
  } else {
    // Unreachable through dispatch (uninstalled cores are not in the
    // active set) but kept defensive: drop, like the serial engine.
    slot.result = PacketResult{};
  }
  if (capture_spec_) {
    slot.spec_undo = core.end_speculation();
    slot.spec_captured = true;
  }
  slot.action = recovery_.on_outcome_speculative(slot.core,
                                                 slot.result.outcome,
                                                 slot.outcome_undo);
  slot.window_violations = recovery_.window_violations(slot.core);
  slot.state.store(SlotState::Executed, std::memory_order_release);
}

void ParallelMpsoc::execute_slot(std::uint64_t seq) {
  Slot& slot = rob_[seq % rob_size_];
  std::atomic<std::uint64_t>& turn = core_turn_[slot.core];
  // Wait for this core's turn. The predecessor ticket was pushed to the
  // same shard deque earlier (FIFO), so it has been popped by a worker
  // that runs it to completion -- this wait always terminates, which is
  // also why workers may only park at the loop top, never mid-item.
  Backoff backoff;
  while (turn.load(std::memory_order_acquire) != slot.ticket) {
    backoff.pause();
  }
  run_slot(slot);
  turn.store(slot.ticket + 1, std::memory_order_release);
  if (slot.action != RecoveryAction::None) {
    epoch_requested_.store(true, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------
// Folding: commit completed slots in global sequence order
// ---------------------------------------------------------------------

void ParallelMpsoc::try_fold() {
  if (!fold_mutex_.try_lock()) return;
  fold_locked();
  fold_mutex_.unlock();
}

void ParallelMpsoc::fold_locked() {
  for (;;) {
    const std::uint64_t f = fold_next_.load(std::memory_order_relaxed);
    if (f == plan_next_.load(std::memory_order_acquire)) return;
    Slot& slot = rob_[f % rob_size_];
    if (slot.state.load(std::memory_order_acquire) != SlotState::Executed) {
      return;
    }
    // An acting slot folds only inside its recovery epoch, after the
    // speculated tail has been rolled back (so the healthy-core gauge
    // and journal it feeds observe exactly the serial engine's state).
    if (slot.action != RecoveryAction::None) return;
    fold_slot(slot);
    slot.state.store(SlotState::Free, std::memory_order_relaxed);
    fold_next_.store(f + 1, std::memory_order_release);
  }
}

void ParallelMpsoc::fold_slot(Slot& slot) {
#if SDMMON_OBS_ENABLED
  EngineObs* obs = eobs();
#endif
  if (slot.core == kUndispatched) {
    ++undispatched_;
#if SDMMON_OBS_ENABLED
    if (obs) obs->undispatched->add(1);
#endif
  } else {
    cores_[slot.core].commit_result(slot.result);
    committed_instr_[slot.core].fetch_add(slot.result.instructions,
                                          std::memory_order_relaxed);
    committed_pkts_[slot.core].fetch_add(1, std::memory_order_relaxed);
    committed_instr_total_.fetch_add(slot.result.instructions,
                                     std::memory_order_relaxed);
    committed_pkts_total_.fetch_add(1, std::memory_order_relaxed);
#if SDMMON_OBS_ENABLED
    // Same call order as the serial engine's process_packet, so the
    // deterministic journal prefix and counters match bit-for-bit.
    if (obs) {
      obs->dispatched->add(1);
      obs->record_outcome(obs->dispatched->value(), slot.core, slot.result,
                          slot.action, slot.window_violations, recovery_);
      if (slot.spec_captured) {
        obs->snapshot_dirty_pages->record(slot.spec_undo.pages.size());
      }
    }
#endif
  }
  if (slot.result_out != nullptr) *slot.result_out = slot.result;
  slot.owned = Packet{};
  slot.item = nullptr;
  slot.result_out = nullptr;
  slot.result = PacketResult{};
  slot.spec_undo = MonitoredCore::SpecUndo{};
  slot.spec_captured = false;
  slot.outcome_undo = RecoveryController::OutcomeUndo{};
}

// ---------------------------------------------------------------------
// Planning: inline in the submitting thread, one packet at a time
// ---------------------------------------------------------------------

std::vector<std::size_t> ParallelMpsoc::active_cores() const {
  std::vector<std::size_t> active;
  active.reserve(cores_.size());
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (core_dispatchable(c)) active.push_back(c);
  }
  return active;
}

bool ParallelMpsoc::plan_dispatch(Slot& slot) {
  slot.action = RecoveryAction::None;
  slot.spec_captured = false;
  slot.result = PacketResult{};
  const std::vector<std::size_t> active = active_cores();
  if (active.empty()) {
    // Fully degraded (or nothing installed yet): the slot is born
    // Executed and folds as an undispatched drop, like the serial path.
    slot.core = kUndispatched;
    slot.rr_after = rr_cursor_;
    slot.state.store(SlotState::Executed, std::memory_order_release);
    return false;
  }
  const std::uint64_t committed_pkts =
      committed_pkts_total_.load(std::memory_order_relaxed);
  const std::uint64_t est_instr =
      committed_pkts == 0
          ? 1
          : std::max<std::uint64_t>(
                1, committed_instr_total_.load(std::memory_order_relaxed) /
                       committed_pkts);
  slot.core = pick_dispatch_core(
      policy_, active, slot.item->flow_key, rr_cursor_,
      [&](std::size_t c) {
        // LeastLoaded sees committed (folded) load plus an estimate for
        // packets planned onto c but still in flight -- the relaxed
        // contract. With batch_size=1 nothing is ever in flight at plan
        // time and this reduces to the serial engine's exact feedback.
        const std::uint64_t committed =
            committed_pkts_[c].load(std::memory_order_relaxed);
        const std::uint64_t outstanding =
            planned_pkts_[c] > committed ? planned_pkts_[c] - committed : 0;
        return committed_instr_[c].load(std::memory_order_relaxed) +
               est_instr * outstanding;
      });
  slot.rr_after = rr_cursor_;
  slot.ticket = next_ticket_[slot.core]++;
  ++planned_pkts_[slot.core];
  slot.state.store(SlotState::Planned, std::memory_order_relaxed);
  return true;
}

void ParallelMpsoc::plan_one(const Packet* borrowed, Packet&& owned,
                             bool owns, PacketResult* result_out) {
  // Backpressure outside the plan lock: wait for reorder-buffer space,
  // helping fold so a worker-less (or fully quarantined) engine still
  // drains. fold_next_ only advances, so the check is stable once true.
  Backoff backoff;
  while (plan_next_.load(std::memory_order_relaxed) -
             fold_next_.load(std::memory_order_acquire) >=
         rob_size_) {
    try_fold();
    backoff.pause();
  }
  std::lock_guard<std::mutex> lock(plan_mutex_);
  const std::uint64_t seq = plan_next_.load(std::memory_order_relaxed);
  Slot& slot = rob_[seq % rob_size_];
  assert(slot.state.load(std::memory_order_relaxed) == SlotState::Free);
  if (owns) {
    slot.owned = std::move(owned);
    slot.item = &slot.owned;
  } else {
    slot.item = borrowed;
  }
  slot.result_out = result_out;
  const bool dispatched = plan_dispatch(slot);
  plan_next_.store(seq + 1, std::memory_order_release);
  if (dispatched) {
    util::StealingDeque<std::uint64_t>& deque = *deques_[shard_of(slot.core)];
    deque.push(seq);
#if SDMMON_OBS_ENABLED
    if (EngineObs* obs = eobs()) {
      obs->shard_queue_depth->record(deque.size_approx());
    }
#endif
  }
}

void ParallelMpsoc::submit(util::Bytes packet, std::uint32_t flow_key) {
  plan_one(nullptr, Packet{std::move(packet), flow_key}, /*owns=*/true,
           nullptr);
}

std::vector<PacketResult> ParallelMpsoc::process_packets(
    const std::vector<Packet>& packets) {
  std::vector<PacketResult> results(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    plan_one(&packets[i], Packet{}, /*owns=*/false, &results[i]);
  }
  flush();
  return results;
}

void ParallelMpsoc::flush() {
  Backoff backoff;
  for (;;) {
    try_fold();
    if (!epoch_requested_.load(std::memory_order_acquire) &&
        fold_next_.load(std::memory_order_acquire) ==
            plan_next_.load(std::memory_order_acquire)) {
      return;
    }
    backoff.pause();
  }
}

// ---------------------------------------------------------------------
// Recovery epochs: the only global synchronization point
// ---------------------------------------------------------------------

void ParallelMpsoc::park_for_epoch() {
  std::unique_lock<std::mutex> lock(epoch_mutex_);
  if (!epoch_requested_.load(std::memory_order_acquire)) return;
  ++parked_;
  if (parked_ == workers_.size()) {
    // parked_ == workers means no worker is executing (each parks only
    // at its loop top, holding no item), so the last one to arrive can
    // safely coordinate the epoch.
    lock.unlock();
    run_epoch();
    lock.lock();
    --parked_;
    epoch_cv_.notify_all();
  } else {
    epoch_cv_.wait(lock, [this] {
      return !epoch_requested_.load(std::memory_order_acquire) ||
             stop_.load(std::memory_order_acquire);
    });
    --parked_;
  }
}

void ParallelMpsoc::run_epoch() {
  // plan_mutex_ stops the planner (and makes this thread the shard
  // deques' producer); fold_mutex_ stops concurrent folding for the
  // whole epoch. Lock order plan -> fold is unique to this path, so no
  // cycle with the planner (plan only) or folders (fold only).
  std::lock_guard<std::mutex> plan_lock(plan_mutex_);
  std::lock_guard<std::mutex> fold_lock(fold_mutex_);
  epochs_.fetch_add(1, std::memory_order_relaxed);
#if SDMMON_OBS_ENABLED
  if (EngineObs* obs = eobs()) obs->shard_epochs->add(1);
#endif

  const std::uint64_t fold_at = fold_next_.load(std::memory_order_relaxed);
  const std::uint64_t plan_at = plan_next_.load(std::memory_order_relaxed);

  // 1. Drain every shard deque: with all workers parked, whatever is
  // still queued is exactly the planned-but-unexecuted set.
  std::vector<std::uint64_t> pending;
  for (auto& deque : deques_) {
    std::uint64_t s;
    while (deque->try_pop(s)) pending.push_back(s);
  }
  std::sort(pending.begin(), pending.end());

  // 2. The epoch pivots on the OLDEST executed slot demanding an action.
  std::uint64_t act = plan_at;
  for (std::uint64_t s = fold_at; s < plan_at; ++s) {
    Slot& slot = rob_[s % rob_size_];
    if (slot.state.load(std::memory_order_acquire) == SlotState::Executed &&
        slot.action != RecoveryAction::None) {
      act = s;
      break;
    }
  }

  // 3. Stragglers older than the pivot run inline, in sequence order.
  // Per-core turn tickets make each core's executed set a prefix, so an
  // unexecuted straggler's core holds no younger packet's side effects
  // and its turn is already current. A straggler may itself act at an
  // older sequence -- then IT becomes the pivot (serial order decides).
  for (std::size_t i = 0; i < pending.size() && pending[i] < act; ++i) {
    Slot& slot = rob_[pending[i] % rob_size_];
    assert(core_turn_[slot.core].load(std::memory_order_relaxed) ==
           slot.ticket);
    run_slot(slot);
    core_turn_[slot.core].store(slot.ticket + 1, std::memory_order_relaxed);
    if (slot.action != RecoveryAction::None) {
      act = pending[i];
      break;
    }
  }

  // 4. Roll back every executed slot younger than the pivot, newest
  // first (per-core tickets descend with sequence): restore the dirty
  // pages and cross-packet core state, withdraw the recovery outcome,
  // rewind the core's turn. Slots the rollback visits are exactly the
  // packets whose serial-order side effects never happened.
  std::uint64_t rolled = 0;
  std::uint64_t rolled_bytes = 0;
  for (std::uint64_t s = plan_at; s-- > act + 1;) {
    Slot& slot = rob_[s % rob_size_];
    if (slot.state.load(std::memory_order_relaxed) != SlotState::Executed ||
        slot.core == kUndispatched) {
      continue;
    }
    if (slot.spec_captured) {
      for (const Memory::PageCopy& page : slot.spec_undo.pages) {
        rolled_bytes += page.bytes.size();
      }
      cores_[slot.core].rollback_speculation(slot.spec_undo);
    }
    recovery_.undo_outcome(slot.core, slot.outcome_undo);
    core_turn_[slot.core].store(slot.ticket, std::memory_order_relaxed);
    ++rolled;
  }

  // 5. Fold the prefix through the pivot. Everything up to `act` is now
  // Executed (stragglers included); the pivot's own fold journals its
  // outcome and -- for a quarantine -- the healthy-core gauge, with all
  // younger speculation already undone, exactly like the serial engine.
  std::size_t act_core = kUndispatched;
  RecoveryAction act_action = RecoveryAction::None;
  std::size_t act_rr = rr_cursor_;
  if (act < plan_at) {
    Slot& pivot = rob_[act % rob_size_];
    act_core = pivot.core;
    act_action = pivot.action;
    act_rr = pivot.rr_after;
  }
  while (fold_next_.load(std::memory_order_relaxed) <
             std::min<std::uint64_t>(act + 1, plan_at)) {
    const std::uint64_t f = fold_next_.load(std::memory_order_relaxed);
    Slot& slot = rob_[f % rob_size_];
    assert(slot.state.load(std::memory_order_relaxed) ==
           SlotState::Executed);
    fold_slot(slot);
    slot.state.store(SlotState::Free, std::memory_order_relaxed);
    fold_next_.store(f + 1, std::memory_order_release);
  }

#if SDMMON_OBS_ENABLED
  if (rolled > 0) {
    if (EngineObs* obs = eobs()) {
      obs->rollbacks->add(1);
      obs->replayed_packets->add(rolled);
      obs->rollback_bytes->add(rolled_bytes);
      obs->journal->record({obs::EventKind::Rollback,
                            obs->dispatched->value(), obs::kAllCores,
                            obs->device_id, rolled});
    }
  }
#endif

  // 6. Apply the pivot's action. A quarantine already flipped health at
  // execute time (and survived the rollback, which only undoes younger
  // slots); a reinstall re-images here, after the fold, so the journal
  // order matches the serial engine.
  if (act_action == RecoveryAction::Reinstall) reinstall_core(act_core);

  // 7. Re-plan the tail against the post-action dispatch state: cursor
  // rewound to the pivot's, tickets restarted at the surviving turns,
  // planner load reset to committed counts.
  if (act < plan_at) rr_cursor_ = act_rr;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    next_ticket_[c] = core_turn_[c].load(std::memory_order_relaxed);
    planned_pkts_[c] = committed_pkts_[c].load(std::memory_order_relaxed);
  }
  for (std::uint64_t s = act + 1; s < plan_at; ++s) {
    Slot& slot = rob_[s % rob_size_];
    slot.spec_undo = MonitoredCore::SpecUndo{};
    slot.outcome_undo = RecoveryController::OutcomeUndo{};
    if (plan_dispatch(slot)) {
      deques_[shard_of(slot.core)]->push(s);
    }
  }

  epoch_requested_.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------
// Installs, admin transitions, observability (quiesce-then-operate)
// ---------------------------------------------------------------------

void ParallelMpsoc::enable_obs(obs::Registry& registry,
                               std::uint32_t device_id,
                               std::uint32_t sample_period) {
#if SDMMON_OBS_ENABLED
  flush();  // quiesce: no worker may be touching core state
  registry.set_sample_period(sample_period);
  obs_ = EngineObs::create(registry, cores_.size(), device_id,
                           /*parallel=*/true);
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    cores_[c].attach_obs(&obs_->cores[c]);
  }
  obs_->healthy_cores->set(
      static_cast<std::int64_t>(recovery_.healthy_cores()));
  obs_live_.store(obs_.get(), std::memory_order_release);
#else
  (void)registry;
  (void)device_id;
  (void)sample_period;
#endif
}

void ParallelMpsoc::reinstall_core(std::size_t index) {
  const std::optional<LastGoodConfig>& good = last_good_[index];
  if (!good) return;  // nothing to re-image from; policy degrades to reset
#if SDMMON_OBS_ENABLED
  EngineObs* obs = eobs();
#endif
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs ? obs->reinstall_ns : nullptr);
#endif
    cores_[index].install(good->program, good->artifacts.graph,
                          good->artifacts.code, good->hash->clone());
  }
  recovery_.note_reinstall(index);
  ++reinstalls_;
#if SDMMON_OBS_ENABLED
  if (obs) {
    obs->reinstalls->add(1);
    obs->journal->record({obs::EventKind::Reinstall,
                          obs->dispatched->value(),
                          static_cast<std::uint32_t>(index), obs->device_id,
                          0});
  }
#endif
}

void ParallelMpsoc::install_all(const isa::Program& program,
                                const monitor::MonitoringGraph& graph,
                                const monitor::InstructionHash& hash) {
  flush();
#if SDMMON_OBS_ENABLED
  EngineObs* obs = eobs();
#endif
  InstallArtifacts artifacts;
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs ? obs->graph_compile_ns : nullptr);
#endif
    artifacts.graph = monitor::CompiledGraph::compile(graph);
  }
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs ? obs->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, hash);
  }
  validate_install_config(program, artifacts, hash);
  install_all(program, std::move(artifacts), hash);
}

void ParallelMpsoc::install_all(
    const isa::Program& program,
    std::shared_ptr<const monitor::CompiledGraph> graph,
    const monitor::InstructionHash& hash) {
  InstallArtifacts artifacts{std::move(graph), nullptr};
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(eobs() ? eobs()->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, hash);
  }
  install_all(program, std::move(artifacts), hash);
}

void ParallelMpsoc::install_all(const isa::Program& program,
                                InstallArtifacts artifacts,
                                const monitor::InstructionHash& hash) {
  flush();
  validate_install_config(program, artifacts, hash);
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    cores_[c].install(program, artifacts.graph, artifacts.code,
                      hash.clone());
    last_good_[c] = LastGoodConfig{program, artifacts, hash.clone()};
  }
#if SDMMON_OBS_ENABLED
  if (EngineObs* obs = eobs()) {
    obs->installs->add(1);
    obs->note_compiled(*artifacts.graph);
    if (artifacts.code) obs->note_predecoded(*artifacts.code);
    obs->journal->record({obs::EventKind::Install, obs->dispatched->value(),
                          obs::kAllCores, obs->device_id,
                          program.text.size()});
  }
#endif
}

void ParallelMpsoc::install(std::size_t core_index,
                            const isa::Program& program,
                            monitor::MonitoringGraph graph,
                            std::unique_ptr<monitor::InstructionHash> hash) {
  flush();
#if SDMMON_OBS_ENABLED
  EngineObs* obs = eobs();
#endif
  InstallArtifacts artifacts;
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs ? obs->graph_compile_ns : nullptr);
#endif
    artifacts.graph = monitor::CompiledGraph::compile(std::move(graph));
  }
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs ? obs->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, *hash);
  }
  install(core_index, program, std::move(artifacts), std::move(hash));
}

void ParallelMpsoc::install(std::size_t core_index,
                            const isa::Program& program,
                            std::shared_ptr<const monitor::CompiledGraph> graph,
                            std::unique_ptr<monitor::InstructionHash> hash) {
  InstallArtifacts artifacts{std::move(graph), nullptr};
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(eobs() ? eobs()->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, *hash);
  }
  install(core_index, program, std::move(artifacts), std::move(hash));
}

void ParallelMpsoc::install(std::size_t core_index,
                            const isa::Program& program,
                            InstallArtifacts artifacts,
                            std::unique_ptr<monitor::InstructionHash> hash) {
  flush();
  validate_install_config(program, artifacts, *hash);
  last_good_.at(core_index) =
      LastGoodConfig{program, artifacts, hash->clone()};
  cores_.at(core_index).install(program, std::move(artifacts.graph),
                                std::move(artifacts.code), std::move(hash));
#if SDMMON_OBS_ENABLED
  if (EngineObs* obs = eobs()) {
    obs->installs->add(1);
    obs->note_compiled(*cores_[core_index].monitor().compiled());
    if (const auto& code = cores_[core_index].core().compiled_program()) {
      obs->note_predecoded(*code);
    }
    obs->journal->record({obs::EventKind::Install, obs->dispatched->value(),
                          static_cast<std::uint32_t>(core_index),
                          obs->device_id, program.text.size()});
  }
#endif
}

void ParallelMpsoc::note_admin_transition(std::size_t index,
                                          obs::EventKind kind) {
#if SDMMON_OBS_ENABLED
  if (EngineObs* obs = eobs()) {
    obs->journal->record({kind, obs->dispatched->value(),
                          static_cast<std::uint32_t>(index), obs->device_id,
                          0});
    obs->healthy_cores->set(
        static_cast<std::int64_t>(recovery_.healthy_cores()));
  }
#else
  (void)index;
  (void)kind;
#endif
}

void ParallelMpsoc::set_core_offline(std::size_t index, bool offline) {
  flush();
  recovery_.set_offline(index, offline);
  note_admin_transition(index, offline ? obs::EventKind::Offline
                                       : obs::EventKind::Online);
}

void ParallelMpsoc::release_core(std::size_t index) {
  flush();
  recovery_.release(index);
  note_admin_transition(index, obs::EventKind::Release);
}

MpsocStats ParallelMpsoc::aggregate_stats() const {
  MpsocStats sum;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const CoreStats& s = cores_[c].stats();
    sum.packets += s.packets;
    sum.forwarded += s.forwarded;
    sum.dropped += s.dropped;
    sum.attacks_detected += s.attacks_detected;
    sum.traps += s.traps;
    sum.instructions += s.instructions;
    switch (recovery_.health(c)) {
      case CoreHealth::Healthy:
        if (cores_[c].installed()) {
          ++sum.healthy_cores;
        } else {
          ++sum.uninstalled_cores;
        }
        break;
      case CoreHealth::Quarantined:
        ++sum.quarantined_cores;
        break;
      case CoreHealth::Offline:
        ++sum.offline_cores;
        break;
    }
  }
  sum.total_cores = cores_.size();
  sum.undispatched = undispatched_;
  sum.violations = recovery_.total_violations();
  sum.quarantine_events = recovery_.quarantine_events();
  sum.reinstalls = reinstalls_;
  return sum;
}

}  // namespace sdmmon::np
