#include "np/parallel_mpsoc.hpp"

#include <algorithm>
#include <cassert>

namespace sdmmon::np {

ParallelMpsoc::ParallelMpsoc(std::size_t num_cores, DispatchPolicy policy,
                             RecoveryConfig recovery, ParallelConfig parallel)
    : cores_(num_cores),
      last_good_(num_cores),
      policy_(policy),
      recovery_(num_cores, recovery),
      config_(parallel),
      ingest_(std::max<std::size_t>(parallel.ingest_depth, 2)) {
  config_.batch_size = std::max<std::size_t>(config_.batch_size, 1);
  std::size_t workers = config_.workers == 0 ? num_cores : config_.workers;
  workers = std::min(std::max<std::size_t>(workers, num_cores > 0 ? 1 : 0),
                     num_cores);
  queues_.reserve(workers);
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    // A worker can be handed every slot of a batch, so batch_size bounds
    // the queue depth; push never blocks.
    queues_.push_back(
        std::make_unique<util::SpscQueue<WorkMsg>>(config_.batch_size + 1));
  }
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

ParallelMpsoc::~ParallelMpsoc() {
  flush();
  auto poison = std::make_unique<Batch>();
  poison->stop = true;
  ingest_.push(std::move(poison));
  dispatcher_.join();  // dispatcher stops every worker before exiting
  for (std::thread& w : workers_) w.join();
}

void ParallelMpsoc::worker_main(std::size_t worker) {
  util::SpscQueue<WorkMsg>& queue = *queues_[worker];
  for (;;) {
    WorkMsg msg = queue.pop();
    if (msg.kind == WorkMsg::Kind::Stop) return;
    const Packet& packet = batch_items_[msg.slot];
    batch_results_[msg.slot] = cores_[msg.core].execute_packet(packet.data);
    gate_.done();
  }
}

void ParallelMpsoc::dispatcher_main() {
  std::vector<PacketResult> scratch;
  for (;;) {
    std::unique_ptr<Batch> batch = ingest_.pop();
    if (batch->stop) {
      for (auto& queue : queues_) {
        queue->push(WorkMsg{WorkMsg::Kind::Stop, 0, 0});
      }
      return;
    }
    if (batch->count > 0) {
      PacketResult* results = batch->results_out;
      if (results == nullptr) {
        scratch.assign(batch->count, PacketResult{});
        results = scratch.data();
      }
      run_batch(batch->items, batch->count, results);
    }
    if (batch->done != nullptr) batch->done->done();
  }
}

std::vector<std::size_t> ParallelMpsoc::active_cores() const {
  std::vector<std::size_t> active;
  active.reserve(cores_.size());
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (core_dispatchable(c)) active.push_back(c);
  }
  return active;
}

void ParallelMpsoc::enable_obs(obs::Registry& registry,
                               std::uint32_t device_id,
                               std::uint32_t sample_period) {
#if SDMMON_OBS_ENABLED
  flush();  // quiesce: the dispatcher must not be touching core state
  registry.set_sample_period(sample_period);
  obs_ = EngineObs::create(registry, cores_.size(), device_id,
                           /*parallel=*/true);
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    cores_[c].attach_obs(&obs_->cores[c]);
  }
  obs_->healthy_cores->set(
      static_cast<std::int64_t>(recovery_.healthy_cores()));
#else
  (void)registry;
  (void)device_id;
  (void)sample_period;
#endif
}

void ParallelMpsoc::reinstall_core(std::size_t index) {
  const std::optional<LastGoodConfig>& good = last_good_[index];
  if (!good) return;  // nothing to re-image from; policy degrades to reset
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->reinstall_ns : nullptr);
#endif
    cores_[index].install(good->program, good->artifacts.graph,
                          good->artifacts.code, good->hash->clone());
  }
  recovery_.note_reinstall(index);
  ++reinstalls_;
#if SDMMON_OBS_ENABLED
  if (obs_) {
    obs_->reinstalls->add(1);
    obs_->journal->record({obs::EventKind::Reinstall,
                           obs_->dispatched->value(),
                           static_cast<std::uint32_t>(index),
                           obs_->device_id, 0});
  }
#endif
}

void ParallelMpsoc::rollback_speculation(
    const std::vector<PlanSlot>& plan, std::size_t attempt_start,
    std::size_t acted_slot, const Packet* items,
    std::vector<std::optional<Core>>& snapshots) {
  // A core is polluted iff it speculatively executed a slot the commit
  // scan did not reach (slots > acted_slot get re-planned, and their
  // memory side effects never happened in the serial order).
  std::vector<bool> polluted(cores_.size(), false);
  bool any = false;
  for (std::size_t i = acted_slot + 1; i < plan.size(); ++i) {
    if (plan[i].core != kUndispatched && !polluted[plan[i].core]) {
      polluted[plan[i].core] = true;
      any = true;
    }
  }
  if (!any) return;
  ++rollbacks_;
  std::uint64_t replayed = 0;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (!polluted[c]) continue;
    assert(snapshots[c].has_value());
    // Rewind to the batch-attempt snapshot, then replay the packets this
    // commit pass accepted (deterministic: same config, same memory, same
    // bytes), leaving the core exactly where the serial engine would be
    // after the acted-upon packet.
    cores_[c].core() = *snapshots[c];
    for (std::size_t i = attempt_start; i <= acted_slot; ++i) {
      if (plan[i].core == c) {
        (void)cores_[c].execute_packet(items[i].data);
        ++replayed;
      }
    }
  }
#if SDMMON_OBS_ENABLED
  if (obs_) {
    obs_->rollbacks->add(1);
    obs_->replayed_packets->add(replayed);
    obs_->journal->record({obs::EventKind::Rollback,
                           obs_->dispatched->value(), obs::kAllCores,
                           obs_->device_id, replayed});
  }
#else
  (void)replayed;
#endif
}

void ParallelMpsoc::run_batch(const Packet* items, std::size_t count,
                              PacketResult* results) {
  std::vector<PlanSlot> plan(count);
  std::vector<std::optional<Core>> snapshots(cores_.size());
  std::vector<std::uint64_t> planned_extra(cores_.size(), 0);
  // Snapshots are only needed when the recovery policy can act mid-batch;
  // the paper-baseline ResetAndContinue never does, so it runs copy-free.
  const bool may_act =
      recovery_.config().policy != RecoveryPolicy::ResetAndContinue;

#if SDMMON_OBS_ENABLED
  if (obs_) obs_->batch_fill->record(count);
#endif

  std::size_t start = 0;
  while (start < count) {
    // ---- plan: serial dispatch decisions against committed state ----
    const std::vector<std::size_t> active = active_cores();
    std::size_t rr = next_;
    std::fill(planned_extra.begin(), planned_extra.end(), 0);
    const std::uint64_t est_instr =
        committed_packets_ == 0
            ? 1
            : std::max<std::uint64_t>(
                  1, committed_instructions_ / committed_packets_);
    std::size_t dispatched = 0;
    for (std::size_t i = start; i < count; ++i) {
      if (active.empty()) {
        plan[i] = PlanSlot{kUndispatched, rr};
        continue;
      }
      const std::size_t core = pick_dispatch_core(
          policy_, active, items[i].flow_key, rr, [&](std::size_t c) {
            // LeastLoaded sees committed load plus an estimate for the
            // packets already planned onto c this batch (the relaxed
            // contract: feedback at batch granularity, not per packet).
            return cores_[c].stats().instructions + planned_extra[c];
          });
      planned_extra[core] += est_instr;
      plan[i] = PlanSlot{core, rr};
      ++dispatched;
    }

    // ---- snapshot: bound the speculation this attempt can commit ----
    if (may_act) {
      for (std::size_t i = start; i < count; ++i) {
        const std::size_t c = plan[i].core;
        if (c != kUndispatched && !snapshots[c].has_value()) {
          snapshots[c] = cores_[c].core();
        }
      }
    }

    // ---- execute: fan the per-core streams out to the workers ----
    gate_.arm(dispatched);
    batch_items_ = items;
    batch_results_ = results;
    for (std::size_t i = start; i < count; ++i) {
      if (plan[i].core == kUndispatched) continue;
      queues_[worker_of(plan[i].core)]->push(
          WorkMsg{WorkMsg::Kind::Execute, i, plan[i].core});
    }
    {
#if SDMMON_OBS_ENABLED
      obs::ScopedTimerNs timer(obs_ ? obs_->barrier_wait_ns : nullptr);
#endif
      gate_.wait();
    }

    // ---- commit: replay outcomes in serial packet order ----
    std::size_t resume = count;
    bool acted = false;
    for (std::size_t i = start; i < count; ++i) {
      if (plan[i].core == kUndispatched) {
        ++undispatched_;
#if SDMMON_OBS_ENABLED
        if (obs_) obs_->undispatched->add(1);
#endif
        results[i] = PacketResult{};  // Dropped, no output
        continue;
      }
      const std::size_t c = plan[i].core;
      cores_[c].commit_result(results[i]);
      ++committed_packets_;
      committed_instructions_ += results[i].instructions;
      const RecoveryAction action =
          recovery_.on_outcome(c, results[i].outcome);
#if SDMMON_OBS_ENABLED
      // Same call order as the serial engine's process_packet, so the
      // deterministic journal prefix and counters match bit-for-bit.
      if (obs_) {
        obs_->dispatched->add(1);
        obs_->record_outcome(obs_->dispatched->value(), c, results[i],
                             action, recovery_.window_violations(c),
                             recovery_);
      }
#endif
      if (action == RecoveryAction::None) continue;
      // Batch barrier: workers are idle, so the health transition and any
      // re-image are race-free, exactly like the serial per-packet path.
      next_ = plan[i].rr_after;
      rollback_speculation(plan, start, i, items, snapshots);
      if (action == RecoveryAction::Reinstall) reinstall_core(c);
      resume = i + 1;
      acted = true;
      break;
    }
    if (!acted) next_ = rr;
    // Snapshots reflect pre-attempt state; invalidate so the next attempt
    // re-captures post-commit memory.
    if (may_act && resume < count) {
      for (auto& snap : snapshots) snap.reset();
    }
    start = resume;
  }
}

void ParallelMpsoc::submit(util::Bytes packet, std::uint32_t flow_key) {
  pending_.push_back(Packet{std::move(packet), flow_key});
  if (pending_.size() < config_.batch_size) return;
  auto batch = std::make_unique<Batch>();
  batch->owned = std::move(pending_);
  pending_.clear();
  batch->items = batch->owned.data();
  batch->count = batch->owned.size();
  ingest_.push(std::move(batch));
#if SDMMON_OBS_ENABLED
  // Queue depth as seen by the submitter right after handing off a batch
  // (backpressure signal; nondeterministic, excluded from engine diffs).
  if (obs_) obs_->ingest_depth->record(ingest_.size_approx());
#endif
}

void ParallelMpsoc::drain() {
  util::CompletionGate done;
  done.arm(1);
  auto fence = std::make_unique<Batch>();
  fence->done = &done;
  ingest_.push(std::move(fence));
  done.wait();
}

void ParallelMpsoc::flush() {
  if (!pending_.empty()) {
    auto batch = std::make_unique<Batch>();
    batch->owned = std::move(pending_);
    pending_.clear();
    batch->items = batch->owned.data();
    batch->count = batch->owned.size();
    ingest_.push(std::move(batch));
  }
  drain();
}

std::vector<PacketResult> ParallelMpsoc::process_packets(
    const std::vector<Packet>& packets) {
  flush();
  std::vector<PacketResult> results(packets.size());
  util::CompletionGate done;
  std::size_t batches = 0;
  for (std::size_t off = 0; off < packets.size();
       off += config_.batch_size) {
    ++batches;
  }
  done.arm(batches);
  for (std::size_t off = 0; off < packets.size();
       off += config_.batch_size) {
    const std::size_t n =
        std::min(config_.batch_size, packets.size() - off);
    auto batch = std::make_unique<Batch>();
    batch->items = packets.data() + off;
    batch->count = n;
    batch->results_out = results.data() + off;
    batch->done = &done;
    ingest_.push(std::move(batch));
  }
  if (batches > 0) done.wait();
  return results;
}

void ParallelMpsoc::install_all(const isa::Program& program,
                                const monitor::MonitoringGraph& graph,
                                const monitor::InstructionHash& hash) {
  flush();
  InstallArtifacts artifacts;
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->graph_compile_ns : nullptr);
#endif
    artifacts.graph = monitor::CompiledGraph::compile(graph);
  }
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, hash);
  }
  validate_install_config(program, artifacts, hash);
  install_all(program, std::move(artifacts), hash);
}

void ParallelMpsoc::install_all(
    const isa::Program& program,
    std::shared_ptr<const monitor::CompiledGraph> graph,
    const monitor::InstructionHash& hash) {
  InstallArtifacts artifacts{std::move(graph), nullptr};
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, hash);
  }
  install_all(program, std::move(artifacts), hash);
}

void ParallelMpsoc::install_all(const isa::Program& program,
                                InstallArtifacts artifacts,
                                const monitor::InstructionHash& hash) {
  flush();
  validate_install_config(program, artifacts, hash);
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    cores_[c].install(program, artifacts.graph, artifacts.code,
                      hash.clone());
    last_good_[c] = LastGoodConfig{program, artifacts, hash.clone()};
  }
#if SDMMON_OBS_ENABLED
  if (obs_) {
    obs_->installs->add(1);
    obs_->note_compiled(*artifacts.graph);
    if (artifacts.code) obs_->note_predecoded(*artifacts.code);
    obs_->journal->record({obs::EventKind::Install,
                           obs_->dispatched->value(), obs::kAllCores,
                           obs_->device_id, program.text.size()});
  }
#endif
}

void ParallelMpsoc::install(std::size_t core_index,
                            const isa::Program& program,
                            monitor::MonitoringGraph graph,
                            std::unique_ptr<monitor::InstructionHash> hash) {
  flush();
  InstallArtifacts artifacts;
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->graph_compile_ns : nullptr);
#endif
    artifacts.graph = monitor::CompiledGraph::compile(std::move(graph));
  }
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, *hash);
  }
  install(core_index, program, std::move(artifacts), std::move(hash));
}

void ParallelMpsoc::install(std::size_t core_index,
                            const isa::Program& program,
                            std::shared_ptr<const monitor::CompiledGraph> graph,
                            std::unique_ptr<monitor::InstructionHash> hash) {
  InstallArtifacts artifacts{std::move(graph), nullptr};
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, *hash);
  }
  install(core_index, program, std::move(artifacts), std::move(hash));
}

void ParallelMpsoc::install(std::size_t core_index,
                            const isa::Program& program,
                            InstallArtifacts artifacts,
                            std::unique_ptr<monitor::InstructionHash> hash) {
  flush();
  validate_install_config(program, artifacts, *hash);
  last_good_.at(core_index) =
      LastGoodConfig{program, artifacts, hash->clone()};
  cores_.at(core_index).install(program, std::move(artifacts.graph),
                                std::move(artifacts.code), std::move(hash));
#if SDMMON_OBS_ENABLED
  if (obs_) {
    obs_->installs->add(1);
    obs_->note_compiled(*cores_[core_index].monitor().compiled());
    if (const auto& code = cores_[core_index].core().compiled_program()) {
      obs_->note_predecoded(*code);
    }
    obs_->journal->record({obs::EventKind::Install,
                           obs_->dispatched->value(),
                           static_cast<std::uint32_t>(core_index),
                           obs_->device_id, program.text.size()});
  }
#endif
}

void ParallelMpsoc::note_admin_transition(std::size_t index,
                                          obs::EventKind kind) {
#if SDMMON_OBS_ENABLED
  if (obs_) {
    obs_->journal->record({kind, obs_->dispatched->value(),
                           static_cast<std::uint32_t>(index),
                           obs_->device_id, 0});
    obs_->healthy_cores->set(
        static_cast<std::int64_t>(recovery_.healthy_cores()));
  }
#else
  (void)index;
  (void)kind;
#endif
}

void ParallelMpsoc::set_core_offline(std::size_t index, bool offline) {
  flush();
  recovery_.set_offline(index, offline);
  note_admin_transition(index, offline ? obs::EventKind::Offline
                                       : obs::EventKind::Online);
}

void ParallelMpsoc::release_core(std::size_t index) {
  flush();
  recovery_.release(index);
  note_admin_transition(index, obs::EventKind::Release);
}

MpsocStats ParallelMpsoc::aggregate_stats() const {
  MpsocStats sum;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const CoreStats& s = cores_[c].stats();
    sum.packets += s.packets;
    sum.forwarded += s.forwarded;
    sum.dropped += s.dropped;
    sum.attacks_detected += s.attacks_detected;
    sum.traps += s.traps;
    sum.instructions += s.instructions;
    switch (recovery_.health(c)) {
      case CoreHealth::Healthy:
        if (cores_[c].installed()) {
          ++sum.healthy_cores;
        } else {
          ++sum.uninstalled_cores;
        }
        break;
      case CoreHealth::Quarantined:
        ++sum.quarantined_cores;
        break;
      case CoreHealth::Offline:
        ++sum.offline_cores;
        break;
    }
  }
  sum.total_cores = cores_.size();
  sum.undispatched = undispatched_;
  sum.violations = recovery_.total_violations();
  sum.quarantine_events = recovery_.quarantine_events();
  sum.reinstalls = reinstalls_;
  return sum;
}

}  // namespace sdmmon::np
