#include "np/memory.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace sdmmon::np {

namespace {
std::size_t pages_for(std::size_t bytes) {
  return (bytes + kPageBytes - 1) / kPageBytes;
}
}  // namespace

Memory::Memory() {
  auto add = [this](std::uint32_t base, std::size_t size) {
    Region region;
    region.base = base;
    region.bytes.assign(size, 0);
    region.maybe_nonzero.assign(pages_for(size), 0);
    region.stamp.assign(pages_for(size), 0);
    regions_.push_back(std::move(region));
  };
  add(kTextBase, kTextSize);
  add(kDataBase, kDataSize);
  add(kStackBase, kStackSize);
  add(kPktInBase, kPktInSize);
  add(kPktOutBase, kPktOutSize);
}

void Memory::touch_page(Region& region, std::uint32_t addr) {
  const std::uint32_t page = (addr - region.base) / kPageBytes;
  if (capture_on_ && region.stamp[page] != capture_epoch_) {
    region.stamp[page] = capture_epoch_;
    const std::size_t off = std::size_t{page} * kPageBytes;
    const std::size_t len = std::min<std::size_t>(kPageBytes,
                                                  region.bytes.size() - off);
    const std::uint8_t* p = region.bytes.data() + off;
    capture_log_.push_back(
        {region.base + page * kPageBytes, util::Bytes(p, p + len)});
  }
  region.maybe_nonzero[page] = 1;
}

void Memory::scrub_region(Region& region) {
  for (std::uint32_t page = 0; page < region.maybe_nonzero.size(); ++page) {
    if (!region.maybe_nonzero[page]) continue;  // invariant: already zero
    const std::size_t off = std::size_t{page} * kPageBytes;
    const std::size_t len = std::min<std::size_t>(kPageBytes,
                                                  region.bytes.size() - off);
    if (capture_on_ && region.stamp[page] != capture_epoch_) {
      region.stamp[page] = capture_epoch_;
      const std::uint8_t* p = region.bytes.data() + off;
      capture_log_.push_back(
          {region.base + page * kPageBytes, util::Bytes(p, p + len)});
    }
    std::memset(region.bytes.data() + off, 0, len);
    region.maybe_nonzero[page] = 0;
  }
}

void Memory::clear() {
  for (auto& region : regions_) scrub_region(region);
}

void Memory::zero_region(std::uint32_t base) {
  for (auto& region : regions_) {
    if (region.base == base) {
      scrub_region(region);
      return;
    }
  }
  throw std::out_of_range("Memory::zero_region: no region at base");
}

void Memory::begin_capture() {
  capture_on_ = true;
  ++capture_epoch_;
  capture_log_.clear();
}

std::vector<Memory::PageCopy> Memory::take_capture() {
  capture_on_ = false;
  return std::move(capture_log_);
}

void Memory::restore_pages(std::span<const PageCopy> log) {
  for (const PageCopy& copy : log) {
    Region* region = find(copy.addr, 1);
    if (!region ||
        copy.addr + copy.bytes.size() > region->base + region->bytes.size()) {
      throw std::out_of_range("Memory::restore_pages outside a region");
    }
    std::memcpy(region->bytes.data() + (copy.addr - region->base),
                copy.bytes.data(), copy.bytes.size());
    // Conservative: the restored content may be nonzero; a later scrub
    // will zero it if so.
    region->maybe_nonzero[(copy.addr - region->base) / kPageBytes] = 1;
  }
}

const Memory::Region* Memory::find(std::uint32_t addr, unsigned size) const {
  for (const auto& region : regions_) {
    if (region.contains(addr, size)) return &region;
  }
  return nullptr;
}

Memory::Region* Memory::find(std::uint32_t addr, unsigned size) {
  return const_cast<Region*>(
      static_cast<const Memory*>(this)->find(addr, size));
}

std::optional<std::uint32_t> Memory::load32(std::uint32_t addr) const {
  if (addr % 4 != 0) return std::nullopt;
  const Region* region = find(addr, 4);
  if (!region) return std::nullopt;
  return util::load_le32(region->bytes.data() + (addr - region->base));
}

std::optional<std::uint16_t> Memory::load16(std::uint32_t addr) const {
  if (addr % 2 != 0) return std::nullopt;
  const Region* region = find(addr, 2);
  if (!region) return std::nullopt;
  const std::uint8_t* p = region->bytes.data() + (addr - region->base);
  return static_cast<std::uint16_t>(p[0] | p[1] << 8);
}

std::optional<std::uint8_t> Memory::load8(std::uint32_t addr) const {
  const Region* region = find(addr, 1);
  if (!region) return std::nullopt;
  return region->bytes[addr - region->base];
}

MemFault Memory::load_fault(std::uint32_t addr, unsigned size) const {
  if (size > 1 && addr % size != 0) return MemFault::Unaligned;
  return find(addr, size) ? MemFault::None : MemFault::OutOfRange;
}

MemFault Memory::store32(std::uint32_t addr, std::uint32_t value) {
  if (addr % 4 != 0) return MemFault::Unaligned;
  Region* region = find(addr, 4);
  if (!region) return MemFault::OutOfRange;
  touch_page(*region, addr);  // aligned: one page
  util::store_le32(value, region->bytes.data() + (addr - region->base));
  return MemFault::None;
}

MemFault Memory::store16(std::uint32_t addr, std::uint16_t value) {
  if (addr % 2 != 0) return MemFault::Unaligned;
  Region* region = find(addr, 2);
  if (!region) return MemFault::OutOfRange;
  touch_page(*region, addr);  // aligned: one page
  std::uint8_t* p = region->bytes.data() + (addr - region->base);
  p[0] = static_cast<std::uint8_t>(value);
  p[1] = static_cast<std::uint8_t>(value >> 8);
  return MemFault::None;
}

MemFault Memory::store8(std::uint32_t addr, std::uint8_t value) {
  Region* region = find(addr, 1);
  if (!region) return MemFault::OutOfRange;
  touch_page(*region, addr);
  region->bytes[addr - region->base] = value;
  return MemFault::None;
}

void Memory::write_block(std::uint32_t addr,
                         std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  Region* region = find(addr, 1);
  if (!region || addr + data.size() > region->base + region->bytes.size()) {
    throw std::out_of_range("Memory::write_block outside a region");
  }
  for (std::uint32_t a = addr & ~(kPageBytes - 1); a < addr + data.size();
       a += kPageBytes) {
    touch_page(*region, std::max(a, addr));
  }
  std::memcpy(region->bytes.data() + (addr - region->base), data.data(),
              data.size());
}

util::Bytes Memory::read_block(std::uint32_t addr, std::size_t len) const {
  if (len == 0) return {};
  const Region* region = find(addr, 1);
  if (!region || addr + len > region->base + region->bytes.size()) {
    throw std::out_of_range("Memory::read_block outside a region");
  }
  const std::uint8_t* p = region->bytes.data() + (addr - region->base);
  return util::Bytes(p, p + len);
}

}  // namespace sdmmon::np
