#include "np/memory.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace sdmmon::np {

Memory::Memory() {
  regions_.push_back({kTextBase, std::vector<std::uint8_t>(kTextSize)});
  regions_.push_back({kDataBase, std::vector<std::uint8_t>(kDataSize)});
  regions_.push_back({kStackBase, std::vector<std::uint8_t>(kStackSize)});
  regions_.push_back({kPktInBase, std::vector<std::uint8_t>(kPktInSize)});
  regions_.push_back({kPktOutBase, std::vector<std::uint8_t>(kPktOutSize)});
}

void Memory::clear() {
  for (auto& region : regions_) {
    std::fill(region.bytes.begin(), region.bytes.end(), 0);
  }
}

const Memory::Region* Memory::find(std::uint32_t addr, unsigned size) const {
  for (const auto& region : regions_) {
    if (region.contains(addr, size)) return &region;
  }
  return nullptr;
}

Memory::Region* Memory::find(std::uint32_t addr, unsigned size) {
  return const_cast<Region*>(
      static_cast<const Memory*>(this)->find(addr, size));
}

std::optional<std::uint32_t> Memory::load32(std::uint32_t addr) const {
  if (addr % 4 != 0) return std::nullopt;
  const Region* region = find(addr, 4);
  if (!region) return std::nullopt;
  return util::load_le32(region->bytes.data() + (addr - region->base));
}

std::optional<std::uint16_t> Memory::load16(std::uint32_t addr) const {
  if (addr % 2 != 0) return std::nullopt;
  const Region* region = find(addr, 2);
  if (!region) return std::nullopt;
  const std::uint8_t* p = region->bytes.data() + (addr - region->base);
  return static_cast<std::uint16_t>(p[0] | p[1] << 8);
}

std::optional<std::uint8_t> Memory::load8(std::uint32_t addr) const {
  const Region* region = find(addr, 1);
  if (!region) return std::nullopt;
  return region->bytes[addr - region->base];
}

MemFault Memory::load_fault(std::uint32_t addr, unsigned size) const {
  if (size > 1 && addr % size != 0) return MemFault::Unaligned;
  return find(addr, size) ? MemFault::None : MemFault::OutOfRange;
}

MemFault Memory::store32(std::uint32_t addr, std::uint32_t value) {
  if (addr % 4 != 0) return MemFault::Unaligned;
  Region* region = find(addr, 4);
  if (!region) return MemFault::OutOfRange;
  util::store_le32(value, region->bytes.data() + (addr - region->base));
  return MemFault::None;
}

MemFault Memory::store16(std::uint32_t addr, std::uint16_t value) {
  if (addr % 2 != 0) return MemFault::Unaligned;
  Region* region = find(addr, 2);
  if (!region) return MemFault::OutOfRange;
  std::uint8_t* p = region->bytes.data() + (addr - region->base);
  p[0] = static_cast<std::uint8_t>(value);
  p[1] = static_cast<std::uint8_t>(value >> 8);
  return MemFault::None;
}

MemFault Memory::store8(std::uint32_t addr, std::uint8_t value) {
  Region* region = find(addr, 1);
  if (!region) return MemFault::OutOfRange;
  region->bytes[addr - region->base] = value;
  return MemFault::None;
}

void Memory::write_block(std::uint32_t addr,
                         std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  Region* region = find(addr, 1);
  if (!region || addr + data.size() > region->base + region->bytes.size()) {
    throw std::out_of_range("Memory::write_block outside a region");
  }
  std::memcpy(region->bytes.data() + (addr - region->base), data.data(),
              data.size());
}

util::Bytes Memory::read_block(std::uint32_t addr, std::size_t len) const {
  if (len == 0) return {};
  const Region* region = find(addr, 1);
  if (!region || addr + len > region->base + region->bytes.size()) {
    throw std::out_of_range("Memory::read_block outside a region");
  }
  const std::uint8_t* p = region->bytes.data() + (addr - region->base);
  return util::Bytes(p, p + len);
}

}  // namespace sdmmon::np
