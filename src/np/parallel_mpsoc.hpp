// Parallel MPSoC execution engine: the same monitored-core array, dispatch
// policies, and recovery pipeline as the serial `Mpsoc`, but with packet
// execution spread across one worker thread per core (or fewer -- cores
// are sharded over workers), fed by bounded SPSC queues from a dispatcher
// thread that also owns every piece of engine state.
//
// Equivalence contract (enforced by tests/mpsoc_parallel_diff_test.cpp):
//
//  * RoundRobin and FlowHash: per-packet outcomes, per-core CoreStats,
//    aggregate_stats(), and every RecoveryController decision are
//    BIT-IDENTICAL to the serial engine on the same packet sequence.
//  * LeastLoaded: dispatch feedback (instructions retired) is only known
//    at batch granularity, so packet->core placement may differ from the
//    serial engine. What is preserved: per-packet outcomes under a
//    homogeneous installation, conservation of every packet (dispatched +
//    undispatched == submitted), and all recovery-safety invariants.
//
// How equivalence survives parallelism: the dispatcher plans a whole
// batch against the current health/config state, workers execute their
// per-core streams speculatively (MonitoredCore::execute_packet defers
// stats), and a commit step replays outcomes in serial packet order
// through the RecoveryController. When a packet triggers a recovery
// action (quarantine / reinstall-last-good), the action is applied at
// that barrier exactly as the serial engine would have, cores polluted by
// speculatively-executed later packets are restored from their batch
// snapshot and replayed, and the remainder of the batch is re-planned
// against the post-action dispatch set. ResetAndContinue never acts, so
// that policy runs snapshot-free at full speed.
//
// Caveat: Core cycle counters, instruction-mix telemetry, and
// MonitorStats can overcount after a rollback (speculated packets are
// re-executed); CoreStats/MpsocStats are exact.
//
// Threading contract: submit()/flush()/process_packets()/install*() and
// every accessor must be called from ONE external thread. Accessors
// observe engine state only when the engine is quiescent (after flush()
// or a synchronous process_packets() call).
#ifndef SDMMON_NP_PARALLEL_MPSOC_HPP
#define SDMMON_NP_PARALLEL_MPSOC_HPP

#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "np/mpsoc.hpp"
#include "util/spsc_queue.hpp"
#include "util/sync.hpp"

namespace sdmmon::np {

struct ParallelConfig {
  /// Worker threads; 0 = one per core. Clamped to [1, num_cores]. Cores
  /// are sharded over workers (core c is owned by worker c % workers), so
  /// per-core packet order is preserved for any worker count.
  std::size_t workers = 0;
  /// Packets per dispatch epoch. Larger batches amortize the barrier;
  /// smaller ones bound rollback replay cost.
  std::size_t batch_size = 256;
  /// Batches buffered between the submitting thread and the dispatcher
  /// (ingest backpressure bound).
  std::size_t ingest_depth = 4;
};

class ParallelMpsoc {
 public:
  /// A packet handed to the engine. `data` is owned so asynchronously
  /// submitted packets survive until their batch executes.
  struct Packet {
    util::Bytes data;
    std::uint32_t flow_key = 0;
  };

  explicit ParallelMpsoc(std::size_t num_cores,
                         DispatchPolicy policy = DispatchPolicy::RoundRobin,
                         RecoveryConfig recovery = {},
                         ParallelConfig parallel = {});
  ~ParallelMpsoc();

  ParallelMpsoc(const ParallelMpsoc&) = delete;
  ParallelMpsoc& operator=(const ParallelMpsoc&) = delete;

  std::size_t num_cores() const { return cores_.size(); }
  std::size_t num_workers() const { return workers_.size(); }
  DispatchPolicy policy() const { return policy_; }

  /// Install the same configuration on every core. Drains in-flight
  /// batches first, so the reprogram lands on a packet boundary -- the
  /// same transactional validation as the serial engine. The graph is
  /// compiled once; every core shares the immutable artifact.
  void install_all(const isa::Program& program,
                   const monitor::MonitoringGraph& graph,
                   const monitor::InstructionHash& hash);

  /// Install already-compiled artifacts on every core (fast switch; no
  /// graph copy, recompilation, or re-decode).
  void install_all(const isa::Program& program, InstallArtifacts artifacts,
                   const monitor::InstructionHash& hash);

  /// Back-compat fast path holding only the compiled graph (predecodes
  /// here, once, shared across all cores).
  void install_all(const isa::Program& program,
                   std::shared_ptr<const monitor::CompiledGraph> graph,
                   const monitor::InstructionHash& hash);

  /// Install on one core only (heterogeneous workload mapping).
  void install(std::size_t core_index, const isa::Program& program,
               monitor::MonitoringGraph graph,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Per-core install of already-compiled artifacts.
  void install(std::size_t core_index, const isa::Program& program,
               InstallArtifacts artifacts,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Back-compat per-core fast switch (predecodes here).
  void install(std::size_t core_index, const isa::Program& program,
               std::shared_ptr<const monitor::CompiledGraph> graph,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Batched ingest: enqueue one packet; a full batch is handed to the
  /// dispatcher thread automatically. Results are folded into stats only.
  void submit(util::Bytes packet, std::uint32_t flow_key = 0);

  /// Block until every submitted packet has been processed and committed.
  void flush();

  /// Synchronous convenience path: process `packets` (chunked into
  /// batches internally) and return per-packet results in input order.
  /// Flushes previously submitted packets first.
  std::vector<PacketResult> process_packets(
      const std::vector<Packet>& packets);

  /// Aggregate counters + health over all cores (quiescent only).
  MpsocStats aggregate_stats() const;

  MonitoredCore& core(std::size_t index) { return cores_[index]; }
  const MonitoredCore& core(std::size_t index) const { return cores_[index]; }

  RecoveryController& recovery() { return recovery_; }
  const RecoveryController& recovery() const { return recovery_; }
  CoreHealth core_health(std::size_t index) const {
    return recovery_.health(index);
  }
  /// Administrative drain / restore of one core (drains in-flight work).
  void set_core_offline(std::size_t index, bool offline);
  /// Operator releases a quarantined core back into the dispatch set.
  void release_core(std::size_t index);

  bool core_dispatchable(std::size_t index) const {
    return recovery_.dispatchable(index) && cores_[index].installed();
  }

  /// Rollback replays performed so far (telemetry for the batch-barrier
  /// recovery path; 0 under RecoveryPolicy::ResetAndContinue).
  std::uint64_t speculation_rollbacks() const { return rollbacks_; }

  /// Attach the observability layer (same contract as Mpsoc::enable_obs,
  /// plus the parallel-only metrics: batch fill, ingest queue depth,
  /// barrier wait, rollback/replay counts). Drains in-flight batches
  /// first so the attach lands on a batch boundary.
  void enable_obs(obs::Registry& registry, std::uint32_t device_id = 0,
                  std::uint32_t sample_period = 1);

 private:
  static constexpr std::size_t kUndispatched =
      static_cast<std::size_t>(-1);

  struct PlanSlot {
    std::size_t core = kUndispatched;
    std::size_t rr_after = 0;  // RoundRobin cursor after planning this slot
  };

  /// One unit of dispatcher->worker work. `slot` indexes the live batch's
  /// packet/result arrays.
  struct WorkMsg {
    enum class Kind : std::uint8_t { Execute, Stop };
    Kind kind = Kind::Execute;
    std::size_t slot = 0;
    std::size_t core = 0;
  };

  /// One ingest unit. Either owns its packets (async submit) or borrows
  /// the caller's (synchronous process_packets, which keeps them alive).
  struct Batch {
    std::vector<Packet> owned;
    const Packet* items = nullptr;
    std::size_t count = 0;
    PacketResult* results_out = nullptr;  // non-null for synchronous calls
    util::CompletionGate* done = nullptr;  // signaled after commit
    bool stop = false;
  };

  void dispatcher_main();
  void worker_main(std::size_t worker);
  void run_batch(const Packet* items, std::size_t count,
                 PacketResult* results);
  /// Restore cores whose speculative executions beyond `acted_slot` must
  /// be undone, then replay their committed packets of this attempt.
  void rollback_speculation(const std::vector<PlanSlot>& plan,
                            std::size_t attempt_start,
                            std::size_t acted_slot, const Packet* items,
                            std::vector<std::optional<Core>>& snapshots);
  void reinstall_core(std::size_t index);
  void note_admin_transition(std::size_t index, obs::EventKind kind);
  std::vector<std::size_t> active_cores() const;
  std::size_t worker_of(std::size_t core) const {
    return core % workers_.size();
  }
  void drain();  // flush without touching caller-side pending buffer

  // ---- engine state (owned by the dispatcher thread while batches are
  // in flight; the ingest queue's release/acquire pairs hand it back and
  // forth with the external thread) ----
  std::vector<MonitoredCore> cores_;
  std::vector<std::optional<LastGoodConfig>> last_good_;
  DispatchPolicy policy_;
  RecoveryController recovery_;
  std::size_t next_ = 0;
  std::uint64_t undispatched_ = 0;
  std::uint64_t reinstalls_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::unique_ptr<EngineObs> obs_;
  // LeastLoaded in-batch load estimation (committed averages).
  std::uint64_t committed_packets_ = 0;
  std::uint64_t committed_instructions_ = 0;

  ParallelConfig config_;
  std::vector<Packet> pending_;  // caller-side partial batch

  // ---- live-batch shared context (written by dispatcher before posting
  // work, read by workers; synchronized through the SPSC queues and the
  // completion gate) ----
  const Packet* batch_items_ = nullptr;
  PacketResult* batch_results_ = nullptr;
  util::CompletionGate gate_;

  util::SpscQueue<std::unique_ptr<Batch>> ingest_;
  std::vector<std::unique_ptr<util::SpscQueue<WorkMsg>>> queues_;
  std::vector<std::thread> workers_;
  std::thread dispatcher_;
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_PARALLEL_MPSOC_HPP
