// Parallel MPSoC execution engine: the same monitored-core array, dispatch
// policies, and recovery pipeline as the serial `Mpsoc`, but rearchitected
// around flow-affinity shards instead of a batch barrier:
//
//  * The planner runs inline in submit()/process_packets(): each packet
//    gets a global sequence number, a dispatch core (shared
//    pick_dispatch_core, so decisions cannot drift from the serial
//    engine), a per-core turn ticket, and a slot in a global reorder
//    buffer (ROB). The slot index is pushed to the deque of the shard
//    that owns the core -- packets of one flow hash to one core and
//    therefore one shard.
//  * Workers drain their own shard's deque first and steal the OLDEST
//    pending item from other shards when idle (util::StealingDeque).
//    An executor spins until its item's ticket matches the core's turn,
//    which serializes each core's packet stream without any global
//    barrier; independent cores never wait on each other.
//  * Execution is speculative: MonitoredCore::execute_packet defers
//    CoreStats, and under a policy that can act the executor brackets the
//    run with dirty-page capture (np::Memory copy-on-first-touch per
//    packet), so rollback cost is proportional to the state the packet
//    actually touched -- not the core's full 80 KiB image.
//  * Results FOLD in global sequence order: any thread (worker, planner,
//    flusher) that can take the fold lock commits completed slots in
//    order -- CoreStats, recovery outcomes, and the observability journal
//    all advance in exactly the serial engine's order.
//
// Recovery epochs replace the per-batch barrier. When a speculatively
// evaluated outcome demands an action (quarantine / reinstall-last-good),
// workers park, and the last one to park coordinates: unexecuted packets
// older than the acting one run inline (per-core tickets guarantee their
// cores are clean), every executed packet younger than the acting one is
// rolled back newest-first (dirty pages restored byte-for-byte, recovery
// outcomes withdrawn, turn counters rewound), the prefix through the
// acting packet folds, the action is applied exactly as the serial engine
// would have, and the tail is re-planned against the post-action dispatch
// set. ResetAndContinue never acts, so that policy runs capture-free at
// full speed and never takes an epoch.
//
// Equivalence contract (enforced by tests/mpsoc_parallel_diff_test.cpp):
//
//  * RoundRobin and FlowHash: per-packet outcomes, per-core CoreStats,
//    aggregate_stats(), and every RecoveryController decision are
//    BIT-IDENTICAL to the serial engine on the same packet sequence.
//  * LeastLoaded: load feedback is committed instructions plus an
//    estimate for packets still in flight, so placement may differ from
//    the serial engine while packets are speculated. batch_size=1 bounds
//    the flight window to one packet and collapses to the strict
//    contract. Conservation of every packet and all recovery-safety
//    invariants hold always.
//
// Caveat: the hardware monitor's internal MonitorStats can overcount
// after a rollback (speculated packets are re-executed); Core cycle/mix
// counters are restored exactly by the SpecState snapshot, and
// CoreStats/MpsocStats are exact.
//
// Threading contract: submit()/flush()/process_packets()/install*() and
// every accessor must be called from ONE external thread. Accessors
// observe engine state only when the engine is quiescent (after flush()
// or a synchronous process_packets() call).
#ifndef SDMMON_NP_PARALLEL_MPSOC_HPP
#define SDMMON_NP_PARALLEL_MPSOC_HPP

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "np/mpsoc.hpp"
#include "util/stealing_deque.hpp"

namespace sdmmon::np {

struct ParallelConfig {
  /// Worker threads; 0 = one per core. Clamped to [1, num_cores]. Each
  /// worker owns one shard; core c belongs to shard c % workers, so a
  /// flow's packets land in one shard's deque and per-core order is
  /// preserved for any worker count (stealing pops oldest-first).
  std::size_t workers = 0;
  /// Speculation window: packets in flight (planned but not yet folded).
  /// Larger windows keep more cores busy; smaller ones bound rollback
  /// replay cost and tighten LeastLoaded feedback (1 = per-packet exact).
  std::size_t batch_size = 256;
  /// Headroom multiplier for the per-shard rings (capacity =
  /// batch_size * ingest_depth, rounded up to a power of two) so epoch
  /// re-plans and steal contention never block the planner.
  std::size_t ingest_depth = 4;
};

class ParallelMpsoc {
 public:
  /// A packet handed to the engine. `data` is owned so asynchronously
  /// submitted packets survive until their slot folds.
  struct Packet {
    util::Bytes data;
    std::uint32_t flow_key = 0;
  };

  explicit ParallelMpsoc(std::size_t num_cores,
                         DispatchPolicy policy = DispatchPolicy::RoundRobin,
                         RecoveryConfig recovery = {},
                         ParallelConfig parallel = {});
  ~ParallelMpsoc();

  ParallelMpsoc(const ParallelMpsoc&) = delete;
  ParallelMpsoc& operator=(const ParallelMpsoc&) = delete;

  std::size_t num_cores() const { return cores_.size(); }
  std::size_t num_workers() const { return workers_.size(); }
  DispatchPolicy policy() const { return policy_; }

  /// Install the same configuration on every core. Drains in-flight
  /// packets first, so the reprogram lands on a packet boundary -- the
  /// same transactional validation as the serial engine. The graph is
  /// compiled once; every core shares the immutable artifact.
  void install_all(const isa::Program& program,
                   const monitor::MonitoringGraph& graph,
                   const monitor::InstructionHash& hash);

  /// Install already-compiled artifacts on every core (fast switch; no
  /// graph copy, recompilation, or re-decode).
  void install_all(const isa::Program& program, InstallArtifacts artifacts,
                   const monitor::InstructionHash& hash);

  /// Back-compat fast path holding only the compiled graph (predecodes
  /// here, once, shared across all cores).
  void install_all(const isa::Program& program,
                   std::shared_ptr<const monitor::CompiledGraph> graph,
                   const monitor::InstructionHash& hash);

  /// Install on one core only (heterogeneous workload mapping).
  void install(std::size_t core_index, const isa::Program& program,
               monitor::MonitoringGraph graph,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Per-core install of already-compiled artifacts.
  void install(std::size_t core_index, const isa::Program& program,
               InstallArtifacts artifacts,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Back-compat per-core fast switch (predecodes here).
  void install(std::size_t core_index, const isa::Program& program,
               std::shared_ptr<const monitor::CompiledGraph> graph,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Asynchronous ingest: plan and enqueue one packet. Blocks only when
  /// the speculation window (batch_size) is full of unfolded packets.
  /// Results are folded into stats only.
  void submit(util::Bytes packet, std::uint32_t flow_key = 0);

  /// Block until every submitted packet has been executed and folded.
  void flush();

  /// Synchronous convenience path: process `packets` and return
  /// per-packet results in input order.
  std::vector<PacketResult> process_packets(
      const std::vector<Packet>& packets);

  /// Aggregate counters + health over all cores (quiescent only).
  MpsocStats aggregate_stats() const;

  MonitoredCore& core(std::size_t index) { return cores_[index]; }
  const MonitoredCore& core(std::size_t index) const { return cores_[index]; }

  RecoveryController& recovery() { return recovery_; }
  const RecoveryController& recovery() const { return recovery_; }
  CoreHealth core_health(std::size_t index) const {
    return recovery_.health(index);
  }
  /// Administrative drain / restore of one core (drains in-flight work).
  void set_core_offline(std::size_t index, bool offline);
  /// Operator releases a quarantined core back into the dispatch set.
  void release_core(std::size_t index);

  bool core_dispatchable(std::size_t index) const {
    return recovery_.dispatchable(index) && cores_[index].installed();
  }

  /// Recovery epochs taken so far (each is one rollback point: workers
  /// parked, speculated tail rewound and re-planned). Deterministic for a
  /// given workload -- one epoch per recovery action -- and always 0
  /// under RecoveryPolicy::ResetAndContinue, which never acts.
  std::uint64_t speculation_rollbacks() const {
    return epochs_.load(std::memory_order_relaxed);
  }

  /// Attach the observability layer (same contract as Mpsoc::enable_obs,
  /// plus the parallel-only metrics: shard steals/epochs/queue depth,
  /// rollback packet and byte counts, dirty pages per snapshot). Drains
  /// in-flight packets first so the attach lands on a packet boundary.
  void enable_obs(obs::Registry& registry, std::uint32_t device_id = 0,
                  std::uint32_t sample_period = 1);

 private:
  static constexpr std::size_t kUndispatched =
      static_cast<std::size_t>(-1);

  enum class SlotState : std::uint8_t {
    Free,      // unplanned (or folded and recycled)
    Planned,   // dispatch decided, waiting in a shard deque
    Executed,  // speculatively executed, waiting to fold in order
  };

  /// One reorder-buffer entry. The planner writes the plan fields under
  /// plan_mutex_ and publishes the slot through the shard deque; the
  /// executor writes the outcome fields and release-stores `state`; the
  /// folder (any thread holding fold_mutex_) consumes it in global
  /// sequence order.
  struct Slot {
    Packet owned;                    // async submit keeps bytes alive here
    const Packet* item = nullptr;    // &owned, or the caller's storage
    PacketResult* result_out = nullptr;  // non-null for process_packets
    PacketResult result;
    std::size_t core = kUndispatched;
    std::size_t rr_after = 0;  // RoundRobin cursor after planning this slot
    std::uint64_t ticket = 0;  // per-core turn number
    RecoveryAction action = RecoveryAction::None;
    std::size_t window_violations = 0;  // captured right after on_outcome
    RecoveryController::OutcomeUndo outcome_undo;
    MonitoredCore::SpecUndo spec_undo;
    bool spec_captured = false;
    std::atomic<SlotState> state{SlotState::Free};
  };

  void worker_main(std::size_t worker);
  bool pop_work(std::size_t worker, std::uint64_t& seq);
  void execute_slot(std::uint64_t seq);
  /// Speculative execution + outcome evaluation for one planned slot;
  /// requires the caller to hold the slot's core turn.
  void run_slot(Slot& slot);
  /// Plan dispatch for the slot at `seq` (requires plan_mutex_). Returns
  /// true when the packet was dispatched (and must be enqueued).
  bool plan_dispatch(Slot& slot);
  void plan_one(const Packet* borrowed, Packet&& owned, bool owns,
                PacketResult* result_out);
  /// Fold completed slots in sequence order (takes fold_mutex_ if free).
  void try_fold();
  void fold_locked();
  void fold_slot(Slot& slot);
  /// Park at the epoch barrier; the last worker to park coordinates.
  void park_for_epoch();
  /// The epoch coordinator: drain, execute stragglers, roll back the
  /// speculated tail, fold through the acting packet, apply its action,
  /// re-plan the tail. Runs with all workers parked.
  void run_epoch();

  void reinstall_core(std::size_t index);
  void note_admin_transition(std::size_t index, obs::EventKind kind);
  std::vector<std::size_t> active_cores() const;
  std::size_t shard_of(std::size_t core) const {
    return core % deques_.size();
  }
  EngineObs* eobs() const {
    return obs_live_.load(std::memory_order_acquire);
  }

  // ---- immutable after construction ----
  std::vector<MonitoredCore> cores_;
  std::vector<std::optional<LastGoodConfig>> last_good_;
  DispatchPolicy policy_;
  RecoveryController recovery_;
  ParallelConfig config_;
  bool capture_spec_ = false;  // policy can act -> dirty-page capture on
  std::size_t rob_size_ = 1;   // in-flight bound == batch_size

  // ---- planner state (plan_mutex_) ----
  std::mutex plan_mutex_;
  std::size_t rr_cursor_ = 0;
  std::vector<std::uint64_t> next_ticket_;   // per core
  std::vector<std::uint64_t> planned_pkts_;  // per core, planner's view
  std::atomic<std::uint64_t> plan_next_{0};

  // ---- fold state (fold_mutex_) ----
  std::mutex fold_mutex_;
  std::atomic<std::uint64_t> fold_next_{0};
  std::uint64_t undispatched_ = 0;
  std::uint64_t reinstalls_ = 0;
  std::unique_ptr<EngineObs> obs_;
  std::atomic<EngineObs*> obs_live_{nullptr};  // workers read via eobs()
  // LeastLoaded load feedback: committed per-core/total tallies (folded
  // under fold_mutex_, read racily by the planner's load closure).
  std::unique_ptr<std::atomic<std::uint64_t>[]> committed_instr_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> committed_pkts_;
  std::atomic<std::uint64_t> committed_instr_total_{0};
  std::atomic<std::uint64_t> committed_pkts_total_{0};

  // ---- per-core execution order ----
  std::unique_ptr<std::atomic<std::uint64_t>[]> core_turn_;

  // ---- epoch machinery ----
  std::atomic<bool> epoch_requested_{false};
  std::mutex epoch_mutex_;
  std::condition_variable epoch_cv_;
  std::size_t parked_ = 0;       // guarded by epoch_mutex_
  std::atomic<std::uint64_t> epochs_{0};

  // ---- reorder buffer + shards ----
  std::unique_ptr<Slot[]> rob_;
  std::vector<std::unique_ptr<util::StealingDeque<std::uint64_t>>> deques_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_PARALLEL_MPSOC_HPP
