// Memory map of one network-processor core, modeled on the paper's
// PLASMA-based prototype: unified memory with no execute protection (which
// is exactly what makes data-plane code-injection attacks possible), plus
// memory-mapped packet I/O registers.
#ifndef SDMMON_NP_MEMMAP_HPP
#define SDMMON_NP_MEMMAP_HPP

#include <cstdint>

namespace sdmmon::np {

// Region bases and sizes (byte addresses).
constexpr std::uint32_t kTextBase = 0x0000'0000;
constexpr std::uint32_t kTextSize = 0x0001'0000;  // 64 KiB instruction memory

constexpr std::uint32_t kDataBase = 0x0001'0000;
constexpr std::uint32_t kDataSize = 0x0001'0000;  // 64 KiB data/heap

constexpr std::uint32_t kStackBase = 0x0002'0000;
constexpr std::uint32_t kStackSize = 0x0001'0000;  // 64 KiB stack
constexpr std::uint32_t kStackTop = kStackBase + kStackSize - 16;

constexpr std::uint32_t kPktInBase = 0x0003'0000;
constexpr std::uint32_t kPktInSize = 0x0000'0800;  // 2 KiB receive buffer

constexpr std::uint32_t kPktOutBase = 0x0004'0000;
constexpr std::uint32_t kPktOutSize = 0x0000'0800;  // 2 KiB transmit buffer

// Memory-mapped control registers.
constexpr std::uint32_t kMmioBase = 0xFFFF'0000;
constexpr std::uint32_t kRegPktInLen = kMmioBase + 0x0;    // RO: bytes in rx buf
constexpr std::uint32_t kRegPktOutCommit = kMmioBase + 0x4;  // WO: commit tx len
constexpr std::uint32_t kRegPktDone = kMmioBase + 0x8;     // WO: drop / finish
constexpr std::uint32_t kRegHalt = kMmioBase + 0xC;        // WO: halt core
constexpr std::uint32_t kRegCycles = kMmioBase + 0x10;     // RO: cycle count
constexpr std::uint32_t kRegPktOutPort = kMmioBase + 0x14;  // WO: egress port

}  // namespace sdmmon::np

#endif  // SDMMON_NP_MEMMAP_HPP
