// Multicore network processor (MPSoC): a set of monitored cores behind a
// dispatcher, the system the paper's "Dynamics" challenge is about --
// multiple cores, each independently (re)programmable at runtime with a
// binary + monitoring graph + hash parameter.
#ifndef SDMMON_NP_MPSOC_HPP
#define SDMMON_NP_MPSOC_HPP

#include <vector>

#include "np/monitored_core.hpp"

namespace sdmmon::np {

enum class DispatchPolicy : std::uint8_t {
  RoundRobin,
  FlowHash,     // same flow key -> same core (stable per-flow ordering)
  LeastLoaded,  // core with the fewest instructions retired so far
};

class Mpsoc {
 public:
  explicit Mpsoc(std::size_t num_cores,
                 DispatchPolicy policy = DispatchPolicy::RoundRobin);

  std::size_t num_cores() const { return cores_.size(); }
  MonitoredCore& core(std::size_t index) { return cores_[index]; }
  const MonitoredCore& core(std::size_t index) const { return cores_[index]; }

  /// Install the same configuration on every core (cloning the hash unit).
  void install_all(const isa::Program& program,
                   const monitor::MonitoringGraph& graph,
                   const monitor::InstructionHash& hash);

  /// Install on one core only (heterogeneous workload mapping).
  void install(std::size_t core_index, const isa::Program& program,
               monitor::MonitoringGraph graph,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Dispatch a packet to a core per the policy; `flow_key` feeds the
  /// FlowHash policy (ignored for RoundRobin).
  PacketResult process_packet(std::span<const std::uint8_t> packet,
                              std::uint32_t flow_key = 0);

  /// Aggregate counters over all cores.
  CoreStats aggregate_stats() const;

 private:
  std::size_t pick_core(std::uint32_t flow_key);

  std::vector<MonitoredCore> cores_;
  DispatchPolicy policy_;
  std::size_t next_ = 0;
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_MPSOC_HPP
