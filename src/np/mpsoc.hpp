// Multicore network processor (MPSoC): a set of monitored cores behind a
// dispatcher, the system the paper's "Dynamics" challenge is about --
// multiple cores, each independently (re)programmable at runtime with a
// binary + monitoring graph + hash parameter.
//
// Beyond dispatch, the MPSoC owns the recovery pipeline: every packet
// outcome feeds a RecoveryController, and the dispatcher routes around
// cores that are quarantined, offline, or simply not yet installed, so a
// partially-degraded MPSoC keeps forwarding on its remaining cores
// (graceful degradation) instead of black-holing a share of the traffic.
#ifndef SDMMON_NP_MPSOC_HPP
#define SDMMON_NP_MPSOC_HPP

#include <memory>
#include <optional>
#include <vector>

#include "np/compiled_program.hpp"
#include "np/dispatch.hpp"
#include "np/monitored_core.hpp"
#include "np/recovery.hpp"

namespace sdmmon::np {

/// The pair of immutable install-time artifacts derived from one signed
/// (binary, graph, hash-parameter) package: the compiled monitoring
/// graph and the predecoded program. Compiled exactly once per install
/// and shared as pointers through every layer (cores, recovery
/// snapshots, the device application store). `code` may be null for
/// callers that deliberately interpret word-at-a-time.
struct InstallArtifacts {
  std::shared_ptr<const monitor::CompiledGraph> graph;
  std::shared_ptr<const CompiledProgram> code;
};

/// The core configuration captured at the last successful install, used
/// by RecoveryPolicy::ReinstallLastGood to re-image a misbehaving core.
/// Holds the shared compiled artifacts, not copies: a quarantine
/// re-image swaps pointers back into the core instead of deep-copying,
/// recompiling the graph, or re-decoding the text, which is what makes
/// recovery latency independent of program and graph size. Shared by the
/// serial and parallel engines.
struct LastGoodConfig {
  isa::Program program;
  InstallArtifacts artifacts;
  std::unique_ptr<monitor::InstructionHash> hash;
};

/// Throws if (program, graph, hash) cannot be installed; leaves all real
/// cores untouched. Compiles the wire-format graph (the compiler rejects
/// malformed graphs: out-of-range entry/successors, hashes wider than
/// the declared width), predecodes the text under `hash`, and stages the
/// binary on a scratch core (load_program throws when it does not fit
/// the memory map). Cores are identical, so success here guarantees
/// success on every real core (commit cannot fail). Returns both
/// compiled artifacts so install paths compile exactly once and share
/// the results everywhere.
InstallArtifacts validate_install_config(const isa::Program& program,
                                         const monitor::MonitoringGraph& graph,
                                         const monitor::InstructionHash& hash);

/// Same staging checks against already-compiled artifacts (fast switches
/// and re-installs of authenticated applications). Also spot-checks that
/// the predecoded hashes match `hash` (see MonitoredCore::install).
void validate_install_config(const isa::Program& program,
                             const InstallArtifacts& artifacts,
                             const monitor::InstructionHash& hash);

/// Aggregate counters plus MPSoC-level health. Inherits the summed
/// per-core counters so existing readers of `.forwarded` etc. keep
/// working; the health fields describe the dispatcher's current view.
struct MpsocStats : CoreStats {
  std::size_t total_cores = 0;
  std::size_t healthy_cores = 0;       // dispatchable (and installed)
  std::size_t quarantined_cores = 0;
  std::size_t offline_cores = 0;
  std::size_t uninstalled_cores = 0;   // healthy but nothing installed yet
  /// Packets that could not be dispatched because no core was available.
  std::uint64_t undispatched = 0;
  std::uint64_t violations = 0;        // attacks + counted traps
  std::uint64_t quarantine_events = 0;
  std::uint64_t reinstalls = 0;        // last-good re-images performed
};

/// Cached observability handles for one execution engine (serial or
/// parallel): engine counters, recovery telemetry, the event journal,
/// and one CoreObs per core. Created by enable_obs(); owned by the
/// engine so the MonitoredCores' cached pointers stay valid. The
/// parallel-only fields are null on the serial engine.
struct EngineObs {
  obs::Registry* registry = nullptr;
  obs::EventJournal* journal = nullptr;
  obs::Counter* dispatched = nullptr;    // packets committed to a core
  obs::Counter* undispatched = nullptr;  // dropped: no dispatchable core
  obs::Counter* installs = nullptr;
  obs::Counter* quarantines = nullptr;
  obs::Counter* reinstalls = nullptr;
  obs::Gauge* healthy_cores = nullptr;
  obs::Histogram* window_occupancy = nullptr;  // violations at decision
  obs::Histogram* reinstall_ns = nullptr;      // wall-clock (cold path)
  /// Install-time graph-compilation cost and compiled-artifact size --
  /// the pipeline stage the compiled-monitor refactor moved out of the
  /// per-instruction hot path.
  obs::Histogram* graph_compile_ns = nullptr;  // wall-clock (install path)
  obs::Gauge* compiled_nodes = nullptr;
  obs::Gauge* compiled_edges = nullptr;
  obs::Gauge* compiled_bytes = nullptr;
  /// Install-time text predecoding cost and predecoded-artifact size --
  /// the pipeline stage the compiled-program refactor moved out of the
  /// per-instruction hot path (decode + Merkle hash, paid once).
  obs::Histogram* predecode_ns = nullptr;  // wall-clock (install path)
  obs::Gauge* compiled_ops = nullptr;
  obs::Gauge* compiled_blocks = nullptr;
  obs::Gauge* compiled_program_bytes = nullptr;
  /// Install-time block-fusion cost (the slice of predecode_ns spent
  /// building the fused-run tables) and fused coverage of the installed
  /// artifact -- how much of the text the superop executor can retire
  /// without per-instruction dispatch.
  obs::Histogram* block_fuse_ns = nullptr;  // wall-clock (install path)
  obs::Gauge* fused_runs = nullptr;
  obs::Gauge* fused_ops = nullptr;
  /// Install-time trace-formation cost (the tier-4 slice of predecode
  /// work), trace coverage of the installed artifact, and the running
  /// side-exit rate of trace dispatches (per mille, updated on the
  /// deterministic commit path).
  obs::Histogram* trace_exec_ns = nullptr;  // wall-clock (install path)
  obs::Gauge* trace_count = nullptr;
  obs::Gauge* trace_ops = nullptr;
  obs::Gauge* trace_side_exit_rate = nullptr;  // per mille
  std::uint64_t trace_dispatches_total = 0;
  std::uint64_t trace_side_exits_total = 0;
  // Parallel engine only (sharded engine internals):
  obs::Counter* shard_steals = nullptr;     // items popped off-shard
  obs::Counter* shard_epochs = nullptr;     // recovery epochs coordinated
  obs::Histogram* shard_queue_depth = nullptr;  // deque depth at enqueue
  obs::Counter* rollbacks = nullptr;
  obs::Counter* replayed_packets = nullptr;
  obs::Counter* rollback_bytes = nullptr;   // dirty-page bytes restored
  obs::Histogram* snapshot_dirty_pages = nullptr;  // pages per speculation
  std::uint32_t device_id = 0;
  std::vector<CoreObs> cores;

  static std::unique_ptr<EngineObs> create(obs::Registry& registry,
                                           std::size_t num_cores,
                                           std::uint32_t device_id,
                                           bool parallel);
  /// Journal + histogram updates for one committed outcome, in serial
  /// commit order (deterministic across engines). `cycle` is the number
  /// of packets the engine has committed so far.
  void record_outcome(std::uint64_t cycle, std::size_t core,
                      const PacketResult& result, RecoveryAction action,
                      std::size_t window_violations,
                      const RecoveryController& recovery);
  /// Update the compiled-artifact size gauges after an install.
  void note_compiled(const monitor::CompiledGraph& graph);
  /// Update the predecoded-program size gauges after an install.
  void note_predecoded(const CompiledProgram& code);
};

class Mpsoc {
 public:
  explicit Mpsoc(std::size_t num_cores,
                 DispatchPolicy policy = DispatchPolicy::RoundRobin,
                 RecoveryConfig recovery = {});

  std::size_t num_cores() const { return cores_.size(); }
  MonitoredCore& core(std::size_t index) { return cores_[index]; }
  const MonitoredCore& core(std::size_t index) const { return cores_[index]; }

  /// Install the same configuration on every core (cloning the hash unit).
  /// Transactional: the configuration is validated on a scratch core
  /// first, so a bad program/graph throws *before* any real core is
  /// touched and the previous configuration keeps running everywhere.
  /// The wire-format graph is compiled exactly once; all cores (and the
  /// LastGoodConfig recovery snapshots) share the one immutable artifact.
  void install_all(const isa::Program& program,
                   const monitor::MonitoringGraph& graph,
                   const monitor::InstructionHash& hash);

  /// Install already-compiled artifacts on every core -- the fast switch
  /// path for applications authenticated and compiled earlier (device
  /// application store): no graph copy, no recompilation, no re-decode.
  void install_all(const isa::Program& program, InstallArtifacts artifacts,
                   const monitor::InstructionHash& hash);

  /// Back-compat fast path holding only the compiled graph: the program
  /// is predecoded here (once, shared across all cores).
  void install_all(const isa::Program& program,
                   std::shared_ptr<const monitor::CompiledGraph> graph,
                   const monitor::InstructionHash& hash);

  /// Install on one core only (heterogeneous workload mapping). Validated
  /// on a scratch core first, like install_all.
  void install(std::size_t core_index, const isa::Program& program,
               monitor::MonitoringGraph graph,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Per-core install of already-compiled artifacts (per-core fast
  /// switch).
  void install(std::size_t core_index, const isa::Program& program,
               InstallArtifacts artifacts,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Back-compat per-core fast switch (predecodes here).
  void install(std::size_t core_index, const isa::Program& program,
               std::shared_ptr<const monitor::CompiledGraph> graph,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Dispatch a packet to a core per the policy; `flow_key` feeds the
  /// FlowHash policy (ignored for RoundRobin). Quarantined, offline, and
  /// uninstalled cores are routed around; when no core is dispatchable
  /// the packet is dropped (and counted in `undispatched`).
  PacketResult process_packet(std::span<const std::uint8_t> packet,
                              std::uint32_t flow_key = 0);

  /// Aggregate counters + health over all cores.
  MpsocStats aggregate_stats() const;

  RecoveryController& recovery() { return recovery_; }
  const RecoveryController& recovery() const { return recovery_; }
  CoreHealth core_health(std::size_t index) const {
    return recovery_.health(index);
  }
  /// Administrative drain / restore of one core.
  void set_core_offline(std::size_t index, bool offline) {
    recovery_.set_offline(index, offline);
    note_admin_transition(index,
                          offline ? obs::EventKind::Offline
                                  : obs::EventKind::Online);
  }
  /// Operator releases a quarantined core back into the dispatch set.
  void release_core(std::size_t index) {
    recovery_.release(index);
    note_admin_transition(index, obs::EventKind::Release);
  }

  /// True if `index` would currently receive traffic.
  bool core_dispatchable(std::size_t index) const {
    return recovery_.dispatchable(index) && cores_[index].installed();
  }

  /// Attach the observability layer: register this engine's metrics in
  /// `registry` and start journaling recovery events. `device_id` tags
  /// journal events when several engines share one registry;
  /// `sample_period` thins per-core histograms (counters stay exact).
  /// No-op (and near-zero packet-path cost) when SDMMON_OBS=OFF.
  void enable_obs(obs::Registry& registry, std::uint32_t device_id = 0,
                  std::uint32_t sample_period = 1);

 private:
  void note_admin_transition(std::size_t index, obs::EventKind kind);

  /// Dispatchable core indices in ascending order (empty = degraded out).
  std::vector<std::size_t> active_cores() const;
  std::size_t pick_core(const std::vector<std::size_t>& active,
                        std::uint32_t flow_key);
  void reinstall_core(std::size_t index);

  std::vector<MonitoredCore> cores_;
  std::vector<std::optional<LastGoodConfig>> last_good_;
  DispatchPolicy policy_;
  RecoveryController recovery_;
  std::size_t next_ = 0;
  std::uint64_t undispatched_ = 0;
  std::uint64_t reinstalls_ = 0;
  std::unique_ptr<EngineObs> obs_;
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_MPSOC_HPP
