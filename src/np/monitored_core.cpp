#include "np/monitored_core.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sdmmon::np {

const char* packet_outcome_name(PacketOutcome outcome) {
  switch (outcome) {
    case PacketOutcome::Forwarded: return "forwarded";
    case PacketOutcome::Dropped: return "dropped";
    case PacketOutcome::AttackDetected: return "attack-detected";
    case PacketOutcome::Trapped: return "trapped";
  }
  return "?";
}

MonitoredCore::MonitoredCore() = default;

void MonitoredCore::install(const isa::Program& program,
                            std::shared_ptr<const monitor::CompiledGraph> graph,
                            std::shared_ptr<const CompiledProgram> code,
                            std::unique_ptr<monitor::InstructionHash> hash) {
  if (code != nullptr) {
    // The hash parameter is secret (it never leaves the unit), so artifact
    // provenance cannot be checked by name: spot-check sampled precomputed
    // hashes against the unit being installed instead. Bounded at 16
    // samples to keep the quarantine re-image path a cheap pointer swap.
    const std::size_t n = code->num_ops();
    const std::size_t samples = std::min<std::size_t>(n, 16);
    for (std::size_t s = 0; s < samples; ++s) {
      const CompiledProgram::PreOp& op = code->ops_data()[s * n / samples];
      if (op.mhash != hash->hash(op.word)) {
        throw std::invalid_argument(
            "CompiledProgram hashes were not computed under the installed "
            "hash unit");
      }
    }
  }
  core_.load_program(program, std::move(code));
  pre_ = core_.compiled_program().get();
  if (monitor_) {
    monitor_->install(std::move(graph), std::move(hash));
  } else {
    monitor_ = std::make_unique<monitor::HardwareMonitor>(std::move(graph),
                                                          std::move(hash));
  }
}

void MonitoredCore::install(const isa::Program& program,
                            std::shared_ptr<const monitor::CompiledGraph> graph,
                            std::unique_ptr<monitor::InstructionHash> hash) {
  std::shared_ptr<const CompiledProgram> code =
      CompiledProgram::compile(program, *hash);
  install(program, std::move(graph), std::move(code), std::move(hash));
}

void MonitoredCore::install(const isa::Program& program,
                            monitor::MonitoringGraph graph,
                            std::unique_ptr<monitor::InstructionHash> hash) {
  install(program, monitor::CompiledGraph::compile(std::move(graph)),
          std::move(hash));
}

CoreObs CoreObs::create(obs::Registry& registry, std::uint32_t core_id,
                        std::uint32_t sample_period) {
  const std::string suffix = "." + std::to_string(core_id);
  CoreObs handles;
  handles.packets = &registry.counter(obs::names::kCorePackets + suffix);
  handles.forwarded =
      &registry.counter(obs::names::kCoreForwarded + suffix);
  handles.dropped = &registry.counter(obs::names::kCoreDropped + suffix);
  handles.attacks = &registry.counter(obs::names::kCoreAttacks + suffix);
  handles.traps = &registry.counter(obs::names::kCoreTraps + suffix);
  handles.instructions =
      &registry.counter(obs::names::kCoreInstructions + suffix);
  handles.instr_per_packet =
      &registry.histogram(obs::names::kCoreInstrPerPacket + suffix,
                          obs::instruction_buckets());
  handles.ndfa_width = &registry.histogram(
      obs::names::kCoreNdfaWidth + suffix, obs::width_buckets());
  handles.core_id = core_id;
  handles.sample_period = sample_period == 0 ? 1 : sample_period;
  return handles;
}

void CoreObs::on_commit(const PacketResult& result) {
  packets->add(1);
  instructions->add(result.instructions);
  switch (result.outcome) {
    case PacketOutcome::Forwarded: forwarded->add(1); break;
    case PacketOutcome::Dropped: dropped->add(1); break;
    case PacketOutcome::AttackDetected: attacks->add(1); break;
    case PacketOutcome::Trapped: traps->add(1); break;
  }
  if (++tick % sample_period == 0) {
    instr_per_packet->record(result.instructions);
    ndfa_width->record(result.monitor_width);
  }
}

PacketResult MonitoredCore::execute_packet(
    std::span<const std::uint8_t> packet) {
  PacketResult result = run_packet(packet);
  result.monitor_width =
      static_cast<std::uint32_t>(monitor_->peak_state_size());
  return result;
}

PacketResult MonitoredCore::run_packet(
    std::span<const std::uint8_t> packet) {
  PacketResult result;

  // Per-packet path: fresh stack/registers, persistent application data.
  // Attack/trap recovery below uses the full re-imaging reset().
  core_.soft_reset();
  monitor_->reset();
  core_.deliver_packet(packet);

  for (;;) {
    // Trace tier (docs/EXECUTION.md, tier 4): when a trace is anchored
    // at the current pc, retire the whole superblock in one exec_trace
    // dispatch, then feed the monitor the trace's precomputed hash
    // lane -- exactly as many hashes as ops retired. Same execute-first
    // equivalence argument as the fused tier below; the one new case is
    // the side exit, where the mispredicted branch is the last retired
    // op (its hash is fed like any other) and dispatch resumes at the
    // actual target.
    const std::uint64_t tlen = core_.trace_run_len();
    if (tlen > 0) {
      // Resolve the trace ref before exec_trace moves pc.
      const CompiledProgram::TraceRef ref = pre_->trace_at(core_.pc());
      const Core::TraceExec tr = core_.exec_trace(tlen);
      ++result.trace_dispatches;
      if (tr.side_exit) ++result.trace_side_exits;
      if (tr.retired > 0) {
        const std::size_t ok = monitor_->advance(
            ref.hashes, static_cast<std::size_t>(tr.retired),
            /*stop_on_mismatch=*/enforce_);
        if (ok < tr.retired) {
          core_.retract_trace(ref.ops + ok + 1, tr.retired - (ok + 1),
                              tr.side_exit);
          result.instructions += ok + 1;
          result.outcome = PacketOutcome::AttackDetected;
          core_.reset();  // paper's recovery: reset stack, next packet
          return result;
        }
        result.instructions += tr.retired;
      }
      if (tr.retired == tlen || tr.side_exit) continue;
      // Short dispatch for a non-side-exit reason: the op now at pc
      // needs the fused or per-op path below.
    }

    // Block-fused tier (docs/EXECUTION.md): when a fusible run (basic
    // block body) starts at the current pc, retire it in one superop
    // dispatch FIRST, then feed the monitor the precomputed hash slice
    // of exactly the ops that retired. Execute-first stays bit-identical
    // to the per-op interleaving:
    //   * fused body ops never read monitor state, so reordering the
    //     hash checks after the batch is unobservable to the core;
    //   * ops that would trap or touch MMIO stop the batch *before*
    //     executing and feed no hash -- exactly like the reference,
    //     where a trapped op does not retire;
    //   * on a mismatch at slice index m, the reference executed ops
    //     0..m and then reset: the batch overshoot (ops m+1..) touched
    //     only state the recovery reset() re-images, so retracting its
    //     surviving cumulative counters (Core::retract_fused) restores
    //     bit-equality before the reset.
    const std::uint64_t fused = core_.fused_run_len();
    if (fused > 0) {
      const std::size_t idx = (core_.pc() - pre_->text_base()) >> 2;
      const std::uint64_t retired = core_.exec_fused_run(fused);
      if (retired > 0) {
        const std::size_t ok = monitor_->advance(
            pre_->hash_lane_data() + idx, static_cast<std::size_t>(retired),
            /*stop_on_mismatch=*/enforce_);
        if (ok < retired) {
          core_.retract_fused(pre_->ops_data() + idx + ok + 1,
                              retired - (ok + 1));
          result.instructions += ok + 1;
          result.outcome = PacketOutcome::AttackDetected;
          core_.reset();  // paper's recovery: reset stack, next packet
          return result;
        }
        result.instructions += retired;
      }
      if (retired == fused) continue;
      // Short batch: the op now at pc traps, touches MMIO, or follows a
      // text-dirtying store -- it needs the per-op path below, which
      // re-derives the authoritative event and hash source.
    }

    StepInfo info = core_.step();

    const bool retired = info.event == StepEvent::Executed ||
                         info.event == StepEvent::PacketOut ||
                         info.event == StepEvent::Halted ||
                         (info.event == StepEvent::PacketDone &&
                          info.pc != kReturnSentinel);
    if (retired) {
      ++result.instructions;
      // While the predecoded image is clean, info.word for any pc inside
      // the artifact IS the installed word, so the precomputed hash can
      // feed the monitor directly -- no Merkle-tree evaluation. Retired
      // instructions outside the artifact (runtime-materialized code,
      // data-region jumps) and any execution after a self-modifying
      // store go through the real hash unit.
      monitor::Verdict verdict;
      std::uint8_t hashed;
      if (pre_ != nullptr && core_.predecode_live() &&
          pre_->monitor_hash(info.pc, hashed)) {
        verdict = monitor_->on_hashed(hashed);
      } else {
        verdict = monitor_->on_instruction(info.word);
      }
      if (verdict == monitor::Verdict::Mismatch && enforce_) {
        result.outcome = PacketOutcome::AttackDetected;
        core_.reset();  // paper's recovery: reset stack, next packet
        return result;
      }
    }

    switch (info.event) {
      case StepEvent::Executed:
        continue;
      case StepEvent::PacketOut:
        result.outcome = PacketOutcome::Forwarded;
        result.output = core_.output();
        result.output_port = core_.output_port();
        return result;
      case StepEvent::PacketDone:
        // A sentinel return must be sanctioned by the monitoring graph.
        if (info.pc == kReturnSentinel && !monitor_->exit_allowed() &&
            enforce_) {
          result.outcome = PacketOutcome::AttackDetected;
          core_.reset();
          return result;
        }
        result.outcome = PacketOutcome::Dropped;
        return result;
      case StepEvent::Halted:
        result.outcome = PacketOutcome::Dropped;
        return result;
      case StepEvent::Trapped:
        result.outcome = PacketOutcome::Trapped;
        result.trap = info.trap;
        core_.reset();
        return result;
    }
  }
}

void MonitoredCore::commit_result(const PacketResult& result) {
  ++stats_.packets;
  switch (result.outcome) {
    case PacketOutcome::Forwarded:
      ++stats_.forwarded;
      break;
    case PacketOutcome::Dropped:
      ++stats_.dropped;
      break;
    case PacketOutcome::AttackDetected:
      ++stats_.attacks_detected;
      break;
    case PacketOutcome::Trapped:
      ++stats_.traps;
      break;
  }
  stats_.instructions += result.instructions;
#if SDMMON_OBS_ENABLED
  if (obs_ != nullptr) obs_->on_commit(result);
#endif
}

PacketResult MonitoredCore::process_packet(
    std::span<const std::uint8_t> packet) {
  if (!installed()) {
    // No program/monitor yet: the packet is dropped, and counted -- an
    // operator watching stats must see the black-holed traffic rather
    // than a core that appears idle.
    PacketResult result;
    result.outcome = PacketOutcome::Dropped;
    commit_result(result);
    return result;
  }
  PacketResult result = execute_packet(packet);
  commit_result(result);
  return result;
}

void MonitoredCore::begin_speculation() {
  spec_state_ = core_.capture_spec_state();
  core_.memory().begin_capture();
}

MonitoredCore::SpecUndo MonitoredCore::end_speculation() {
  SpecUndo undo;
  undo.core_state = spec_state_;
  undo.pages = core_.memory().take_capture();
  return undo;
}

void MonitoredCore::rollback_speculation(const SpecUndo& undo) {
  // Within one capture every page is logged once, at its pre-speculation
  // content, so restore order inside the log does not matter. Across
  // packets the caller rolls back newest-first.
  core_.memory().restore_pages(undo.pages);
  core_.restore_spec_state(undo.core_state);
}

}  // namespace sdmmon::np
