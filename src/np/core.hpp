// Single network-processor core: a PLASMA-like MIPS-subset interpreter
// with packet-I/O MMIO. The core exposes exactly the contract the hardware
// monitor taps in the paper's Figure 1: for every retired instruction it
// reports the (pc, raw 32-bit word) pair.
//
// Convention for packet handlers: the core enters at Program::entry with
// $ra set to kReturnSentinel; returning there counts as "packet done"
// (drop). Handlers can instead commit an output packet by storing the
// output length to kRegPktOutCommit.
#ifndef SDMMON_NP_CORE_HPP
#define SDMMON_NP_CORE_HPP

#include <array>
#include <cstdint>
#include <memory>

#include "isa/program.hpp"
#include "np/compiled_program.hpp"
#include "np/cycle_model.hpp"
#include "np/memory.hpp"

namespace sdmmon::np {

/// pc value that signals a normal return from the packet handler.
constexpr std::uint32_t kReturnSentinel = 0xDEAD'BEE0;

enum class Trap : std::uint8_t {
  None,
  FetchFault,    // pc outside memory or unaligned
  DecodeFault,   // unknown instruction encoding
  MemFault,      // data access outside memory / unaligned
  Overflow,      // signed overflow on add/addi/sub
  Syscall,       // syscall executed (unused by our apps; acts as a guard)
  Break,         // break executed
  Watchdog,      // per-packet cycle budget exhausted
};

const char* trap_name(Trap trap);

/// What a single step did.
enum class StepEvent : std::uint8_t {
  Executed,    // normal instruction retired
  PacketOut,   // instruction retired and committed an output packet
  PacketDone,  // handler finished without output (drop) or returned
  Halted,      // core halted via kRegHalt
  Trapped,     // instruction trapped; core needs reset
};

struct StepInfo {
  std::uint32_t pc = 0;     // address of the executed instruction
  std::uint32_t word = 0;   // raw instruction word (what the monitor hashes)
  StepEvent event = StepEvent::Executed;
  Trap trap = Trap::None;
};

class Core {
 public:
  Core();

  /// Load program text+data into memory and prime entry state. Drops any
  /// previously attached predecoded artifact (word-at-a-time interpreter).
  void load_program(const isa::Program& program);

  /// Load a program together with its install-time predecoded artifact.
  /// The core caches raw pointers into the shared immutable artifact and
  /// step()/run() take the decode-free fast path while the in-memory text
  /// still matches the installed image. Throws std::invalid_argument if
  /// the artifact was not compiled from `program` (base/size mismatch) --
  /// staging validation upstream makes this unreachable on install paths.
  void load_program(const isa::Program& program,
                    std::shared_ptr<const CompiledProgram> compiled);

  /// Full reset: architectural state AND memory re-imaged from the loaded
  /// program (text, data, zeroed stack/buffers). Used at install time and
  /// as the paper's attack recovery -- nothing an attacker wrote survives.
  void reset();

  /// Per-packet reset: registers/pc/stack/packet buffers are reset but the
  /// application's data RAM persists (flow tables, counters). This is the
  /// normal between-packets path of a real NP core.
  void soft_reset();

  /// Place a packet in the receive buffer (truncated to the buffer size).
  void deliver_packet(std::span<const std::uint8_t> packet);

  /// Execute one instruction. After a terminal event (PacketDone/PacketOut/
  /// Halted/Trapped) the core refuses to step until reset().
  StepInfo step();

  /// Run until a terminal event or `max_steps`; returns the last StepInfo.
  StepInfo run(std::uint64_t max_steps = 1'000'000);

  bool runnable() const { return runnable_; }
  std::uint32_t pc() const { return pc_; }
  std::uint32_t reg(int index) const {
    return regs_[static_cast<std::size_t>(index)];
  }
  void set_reg(int index, std::uint32_t value) {
    if (index != 0) regs_[static_cast<std::size_t>(index)] = value;
  }
  std::uint64_t cycles() const { return cycles_; }
  /// Cumulative retired-instruction mix (survives reset(); feeds the
  /// cycle-cost model for modeled throughput).
  const InstrMix& instr_mix() const { return mix_; }
  std::uint64_t watchdog_budget() const { return watchdog_budget_; }
  void set_watchdog_budget(std::uint64_t cycles) { watchdog_budget_ = cycles; }

  bool has_output() const { return has_output_; }
  const util::Bytes& output() const { return output_; }
  /// Egress port selected via kRegPktOutPort (0 if never written).
  std::uint32_t output_port() const { return out_port_; }

  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }

  /// The shared predecoded artifact (nullptr when interpreting). Pointer
  /// identity across cores is the install-sharing invariant tests assert.
  const std::shared_ptr<const CompiledProgram>& compiled_program() const {
    return compiled_;
  }

  /// Toggle the predecoded fast path at runtime (differential oracles and
  /// head-to-head benches run the same core interpreted). Sticky across
  /// load_program/reset -- it is a property of the core, not the program.
  /// Disabling predecode also disables block fusion (the fused tables
  /// live in the artifact the toggle turns off).
  void set_predecode_enabled(bool on) {
    predecode_enabled_ = on;
    update_predecode_live();
  }
  bool predecode_enabled() const { return predecode_enabled_; }

  /// True while step()/run() actually execute predecoded ops: an artifact
  /// is attached, the fast path is enabled, and no store has dirtied the
  /// text image since the last full reset()/load_program().
  bool predecode_live() const { return pre_ops_ != nullptr; }

  /// Toggle the block-fused tier independently of predecode (the middle
  /// tier of the execution pipeline, docs/EXECUTION.md): when off, runs
  /// are never fused but the predecoded per-op fast path stays live.
  /// Sticky across load_program/reset, like set_predecode_enabled.
  void set_block_fuse_enabled(bool on) {
    fuse_enabled_ = on;
    update_predecode_live();
  }
  bool block_fuse_enabled() const { return fuse_enabled_; }

  /// True while run() may retire fused block bodies: predecode is live
  /// AND fusion is enabled (dirty text or a detached artifact kills
  /// both).
  bool block_fuse_live() const { return pre_run_ != nullptr; }

  /// Length of the fused block body dispatchable at the current pc: the
  /// artifact's precomputed run length, clamped to the remaining
  /// watchdog budget. 0 whenever fused execution is not currently
  /// possible (fusion not live, core not runnable, pc outside or
  /// misaligned in the artifact, current op not fusible, budget
  /// exhausted) -- callers fall back to per-op dispatch, which
  /// re-derives the authoritative event. Ops of a returned run are
  /// *attemptable*, not guaranteed to retire: exec_fused_run() stops
  /// early at would-trap ops, MMIO accesses, and text-dirtying stores
  /// and reports the exact retired count. The clamp keeps the watchdog
  /// from firing mid-run.
  std::uint64_t fused_run_len() const {
    if (pre_run_ == nullptr || !runnable_) return 0;
    const std::uint32_t off = pc_ - pre_base_;
    if (off >= pre_text_bytes_ || (off & 3u) != 0) return 0;
    if (packet_cycles_ >= watchdog_budget_) return 0;
    const std::uint64_t slack = watchdog_budget_ - packet_cycles_;
    const std::uint64_t run = pre_run_[off >> 2];
    return run < slack ? run : slack;
  }

  /// Retire up to `n` ops of the fused block body at the current pc in
  /// one straight-line dispatch (computed-goto superop executor) and
  /// return how many actually retired. The caller must hold a run
  /// length from fused_run_len() with 0 < n <= that length. The batch
  /// stops *before* (the offending op does not retire, pc points at it)
  ///   - any op that would trap (overflow, MemFault), and
  ///   - any load/store whose address reaches MMIO (>= kMmioBase):
  ///     MMIO reads must observe up-to-date cycle counters and MMIO
  ///     stores raise terminal packet events, so both take the per-op
  ///     exec() path;
  /// and stops *after* a store that dirties the predecoded text (the
  /// store itself retires; every later op would execute a stale
  /// predecode). Cycles, the retired mix, and pc advance exactly as
  /// `retired` individual step() calls would. MonitoredCore executes
  /// first, then feeds the monitor exactly `retired` precomputed
  /// hashes -- see docs/EXECUTION.md for the equivalence argument.
  std::uint64_t exec_fused_run(std::uint64_t n);

  /// Un-retire the last `n` ops of a just-executed fused run: subtracts
  /// their cycles and instruction-mix classes (`ops` points at the
  /// PreOps of the overshoot, all body-class). Used only by
  /// MonitoredCore's attack path: when the monitor flags hash m of a
  /// fused batch, the reference interleaving executes exactly m+1 ops
  /// before the recovery reset; the reset re-images registers and
  /// memory anyway, so retracting the surviving cumulative counters
  /// makes the fused batch bit-identical to it.
  void retract_fused(const CompiledProgram::PreOp* ops, std::uint64_t n);

  /// Toggle the trace (superblock) tier, the fourth pipeline tier
  /// (docs/EXECUTION.md). Sticky across load_program/reset like the
  /// other toggles. Traces ride on the block-fused tier: disabling
  /// predecode or fusion also disables traces.
  void set_trace_enabled(bool on) {
    trace_enabled_ = on;
    update_predecode_live();
  }
  bool trace_enabled() const { return trace_enabled_; }

  /// True while run() may retire whole traces: fusion is live AND the
  /// trace tier is enabled.
  bool trace_live() const { return pre_trace_len_ != nullptr; }

  /// Length of the trace dispatchable at the current pc, clamped to the
  /// remaining watchdog budget; 0 whenever trace execution is not
  /// currently possible (tier not live, core not runnable, pc outside
  /// or misaligned in the artifact, no trace anchored at pc, budget
  /// exhausted). Like fused_run_len(), returned ops are *attemptable*:
  /// exec_trace() stops early at would-trap ops, MMIO accesses,
  /// text-dirtying stores, and mispredicted branches (side exits).
  std::uint64_t trace_run_len() const {
    if (pre_trace_len_ == nullptr || !runnable_) return 0;
    const std::uint32_t off = pc_ - pre_base_;
    if (off >= pre_text_bytes_ || (off & 3u) != 0) return 0;
    const std::uint64_t len = pre_trace_len_[off >> 2];
    if (len == 0) return 0;
    if (packet_cycles_ >= watchdog_budget_) return 0;
    const std::uint64_t slack = watchdog_budget_ - packet_cycles_;
    return len < slack ? len : slack;
  }

  /// What one exec_trace() dispatch did. `side_exit` is set when the
  /// last retired op was a conditional branch that resolved against its
  /// static prediction -- the branch itself retires (pc follows the
  /// *actual* target), only the not-yet-executed trace tail is
  /// abandoned.
  struct TraceExec {
    std::uint64_t retired = 0;
    bool side_exit = false;
  };

  /// Retire up to `n` ops of the trace anchored at the current pc in
  /// one dispatch and report how many retired. The caller must hold a
  /// length from trace_run_len() with 0 < n <= that length. Body ops
  /// follow exec_fused_run()'s stop rules exactly (stop before
  /// would-trap/MMIO ops, stop after a text-dirtying store); branches
  /// and j/jal resolve architecturally -- jal writes $ra, the mix
  /// counts taken/not-taken by the *actual* outcome -- and a branch
  /// that leaves the predicted path stops the dispatch as a side exit
  /// after retiring. Cycles, mix, and pc advance exactly as `retired`
  /// individual step() calls would.
  TraceExec exec_trace(std::uint64_t n);

  /// Un-retire the last `n` ops of a just-executed trace (the
  /// monitor-unchecked overshoot past a flagged hash), the trace tier's
  /// analog of retract_fused(). `ops` points at the TraceOps of the
  /// overshoot. `last_mispredicted` must be the dispatch's side_exit
  /// flag: a side-exiting branch is always the *last* retired op and is
  /// the only op that retired against its prediction, so it is the only
  /// op whose taken/not-taken mix attribution differs from its static
  /// flag.
  void retract_trace(const CompiledProgram::TraceOp* ops, std::uint64_t n,
                     bool last_mispredicted);

  /// True once a store landed in the predecoded text range (self-modifying
  /// code or injection). Cleared only by the re-imaging reset paths --
  /// soft_reset() keeps it, because soft reset does not restore text.
  bool text_dirty() const { return text_dirty_; }

  /// Architectural state that survives soft_reset() and is observable
  /// across packets: the cycle counter (guest-readable via kRegCycles),
  /// the cumulative instruction mix, and the text-dirty flag. Together
  /// with the memory pages a packet writes (captured by
  /// Memory::begin_capture), this is everything one speculative packet
  /// execution can leak into the next -- the parallel engine snapshots
  /// exactly this pair instead of copying the whole core.
  struct SpecState {
    std::uint64_t cycles = 0;
    InstrMix mix;
    bool text_dirty = false;
  };
  SpecState capture_spec_state() const { return {cycles_, mix_, text_dirty_}; }
  void restore_spec_state(const SpecState& state) {
    cycles_ = state.cycles;
    mix_ = state.mix;
    if (text_dirty_ != state.text_dirty) {
      text_dirty_ = state.text_dirty;
      update_predecode_live();
    }
  }

 private:
  void reset_architectural_state();
  /// Recompute the cached fast-path pointers from (artifact, enabled,
  /// dirty); called whenever any of the three inputs changes.
  void update_predecode_live();
  StepInfo exec(const isa::Instr& in, StepInfo info);
  StepInfo finish(StepInfo info, StepEvent event, Trap trap = Trap::None);
  StepInfo mmio_store(StepInfo info, std::uint32_t addr, std::uint32_t value);
  bool mmio_load(std::uint32_t addr, std::uint32_t& value) const;
  /// Store landed at `addr`: dirty the artifact if it hit predecoded text.
  void note_store(std::uint32_t addr) {
    if (addr - pre_base_ < pre_text_bytes_) {
      text_dirty_ = true;
      update_predecode_live();
    }
  }

  Memory mem_;
  isa::Program program_;
  bool program_loaded_ = false;
  // Shared immutable predecode artifact plus cached raw views of it (the
  // per-step path dereferences no smart pointer). pre_ops_ is non-null
  // only while the fast path is live; pre_base_/pre_text_bytes_ describe
  // the predecoded range whenever an artifact is attached (store-dirty
  // tracking stays armed even when the fast path is toggled off).
  std::shared_ptr<const CompiledProgram> compiled_;
  const CompiledProgram::PreOp* pre_ops_ = nullptr;
  // Fused-run length table, non-null only while pre_ops_ is live AND
  // fusion is enabled (the block-fused tier rides on the predecoded
  // artifact and dies with it).
  const std::uint8_t* pre_run_ = nullptr;
  // Trace tables, non-null only while pre_run_ is live AND the trace
  // tier is enabled (tier 4 rides on tier 3).
  const std::uint8_t* pre_trace_len_ = nullptr;
  const std::uint32_t* pre_trace_off_ = nullptr;
  const CompiledProgram::TraceOp* pre_trace_ops_ = nullptr;
  std::uint32_t pre_base_ = 0;
  std::uint32_t pre_text_bytes_ = 0;
  bool predecode_enabled_ = true;
  bool fuse_enabled_ = true;
  bool trace_enabled_ = true;
  bool text_dirty_ = false;
  std::array<std::uint32_t, 32> regs_{};
  std::uint32_t pc_ = 0;
  std::uint32_t hi_ = 0;
  std::uint32_t lo_ = 0;
  std::uint64_t cycles_ = 0;
  InstrMix mix_;
  std::uint64_t packet_cycles_ = 0;
  std::uint64_t watchdog_budget_ = 1'000'000;
  bool runnable_ = false;
  std::uint32_t pkt_in_len_ = 0;
  util::Bytes output_;
  bool has_output_ = false;
  std::uint32_t out_port_ = 0;
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_CORE_HPP
