// Single network-processor core: a PLASMA-like MIPS-subset interpreter
// with packet-I/O MMIO. The core exposes exactly the contract the hardware
// monitor taps in the paper's Figure 1: for every retired instruction it
// reports the (pc, raw 32-bit word) pair.
//
// Convention for packet handlers: the core enters at Program::entry with
// $ra set to kReturnSentinel; returning there counts as "packet done"
// (drop). Handlers can instead commit an output packet by storing the
// output length to kRegPktOutCommit.
#ifndef SDMMON_NP_CORE_HPP
#define SDMMON_NP_CORE_HPP

#include <array>
#include <cstdint>

#include "isa/program.hpp"
#include "np/cycle_model.hpp"
#include "np/memory.hpp"

namespace sdmmon::np {

/// pc value that signals a normal return from the packet handler.
constexpr std::uint32_t kReturnSentinel = 0xDEAD'BEE0;

enum class Trap : std::uint8_t {
  None,
  FetchFault,    // pc outside memory or unaligned
  DecodeFault,   // unknown instruction encoding
  MemFault,      // data access outside memory / unaligned
  Overflow,      // signed overflow on add/addi/sub
  Syscall,       // syscall executed (unused by our apps; acts as a guard)
  Break,         // break executed
  Watchdog,      // per-packet cycle budget exhausted
};

const char* trap_name(Trap trap);

/// What a single step did.
enum class StepEvent : std::uint8_t {
  Executed,    // normal instruction retired
  PacketOut,   // instruction retired and committed an output packet
  PacketDone,  // handler finished without output (drop) or returned
  Halted,      // core halted via kRegHalt
  Trapped,     // instruction trapped; core needs reset
};

struct StepInfo {
  std::uint32_t pc = 0;     // address of the executed instruction
  std::uint32_t word = 0;   // raw instruction word (what the monitor hashes)
  StepEvent event = StepEvent::Executed;
  Trap trap = Trap::None;
};

class Core {
 public:
  Core();

  /// Load program text+data into memory and prime entry state.
  void load_program(const isa::Program& program);

  /// Full reset: architectural state AND memory re-imaged from the loaded
  /// program (text, data, zeroed stack/buffers). Used at install time and
  /// as the paper's attack recovery -- nothing an attacker wrote survives.
  void reset();

  /// Per-packet reset: registers/pc/stack/packet buffers are reset but the
  /// application's data RAM persists (flow tables, counters). This is the
  /// normal between-packets path of a real NP core.
  void soft_reset();

  /// Place a packet in the receive buffer (truncated to the buffer size).
  void deliver_packet(std::span<const std::uint8_t> packet);

  /// Execute one instruction. After a terminal event (PacketDone/PacketOut/
  /// Halted/Trapped) the core refuses to step until reset().
  StepInfo step();

  /// Run until a terminal event or `max_steps`; returns the last StepInfo.
  StepInfo run(std::uint64_t max_steps = 1'000'000);

  bool runnable() const { return runnable_; }
  std::uint32_t pc() const { return pc_; }
  std::uint32_t reg(int index) const {
    return regs_[static_cast<std::size_t>(index)];
  }
  void set_reg(int index, std::uint32_t value) {
    if (index != 0) regs_[static_cast<std::size_t>(index)] = value;
  }
  std::uint64_t cycles() const { return cycles_; }
  /// Cumulative retired-instruction mix (survives reset(); feeds the
  /// cycle-cost model for modeled throughput).
  const InstrMix& instr_mix() const { return mix_; }
  std::uint64_t watchdog_budget() const { return watchdog_budget_; }
  void set_watchdog_budget(std::uint64_t cycles) { watchdog_budget_ = cycles; }

  bool has_output() const { return has_output_; }
  const util::Bytes& output() const { return output_; }
  /// Egress port selected via kRegPktOutPort (0 if never written).
  std::uint32_t output_port() const { return out_port_; }

  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }

 private:
  void reset_architectural_state();
  StepInfo finish(StepInfo info, StepEvent event, Trap trap = Trap::None);
  StepInfo mmio_store(StepInfo info, std::uint32_t addr, std::uint32_t value);
  bool mmio_load(std::uint32_t addr, std::uint32_t& value) const;

  Memory mem_;
  isa::Program program_;
  bool program_loaded_ = false;
  std::array<std::uint32_t, 32> regs_{};
  std::uint32_t pc_ = 0;
  std::uint32_t hi_ = 0;
  std::uint32_t lo_ = 0;
  std::uint64_t cycles_ = 0;
  InstrMix mix_;
  std::uint64_t packet_cycles_ = 0;
  std::uint64_t watchdog_budget_ = 1'000'000;
  bool runnable_ = false;
  std::uint32_t pkt_in_len_ = 0;
  util::Bytes output_;
  bool has_output_ = false;
  std::uint32_t out_port_ = 0;
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_CORE_HPP
