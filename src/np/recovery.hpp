// Per-core attack-recovery policy, extending the paper's single recovery
// action (drop packet, reset core, continue -- Section 2.1) into a state
// machine suited to sustained attacks:
//
//               K violations in window            reinstalls exhausted
//   Healthy ------------------------------> ... ------------------------
//     ^  |                                                             |
//     |  | policy = ResetAndContinue: stay Healthy (paper baseline)    v
//     |  | policy = ReinstallLastGood: re-image from last-good,   Quarantined
//     |  |   up to max_reinstalls, then quarantine                     |
//     |  | policy = QuarantineAfterK: quarantine immediately           |
//     |  +-----------------------------------------------------------> |
//     +------------------- release() (operator action) ----------------+
//
// Offline is a separate administrative state (hardware fault / manual
// drain); only an explicit set_offline(false) brings a core back. The
// dispatcher treats Quarantined and Offline cores as undispatchable, so a
// compromised or flaky core sheds load to its healthy peers instead of
// black-holing a fixed slice of traffic.
#ifndef SDMMON_NP_RECOVERY_HPP
#define SDMMON_NP_RECOVERY_HPP

#include <atomic>
#include <cstdint>
#include <vector>

#include "np/monitored_core.hpp"

namespace sdmmon::np {

enum class CoreHealth : std::uint8_t {
  Healthy,      // dispatchable
  Quarantined,  // too many violations; excluded until released
  Offline,      // administratively removed (fault / drain)
};

const char* core_health_name(CoreHealth health);

enum class RecoveryPolicy : std::uint8_t {
  ResetAndContinue,  // paper baseline: per-packet reset only, never isolate
  QuarantineAfterK,  // isolate a core after K violations in the window
  ReinstallLastGood, // re-image from last-good config first; quarantine
                     // only after max_reinstalls re-images in a row fail
                     // to stop the violations
};

const char* recovery_policy_name(RecoveryPolicy policy);

struct RecoveryConfig {
  RecoveryPolicy policy = RecoveryPolicy::ResetAndContinue;
  /// K: violations within the sliding window that trip the policy.
  std::size_t violation_threshold = 3;
  /// Sliding window length, in packets processed by the core.
  std::size_t window_packets = 64;
  /// ReinstallLastGood: re-images allowed before escalating to quarantine.
  std::size_t max_reinstalls = 2;
  /// Whether traps (faults/watchdog) count as violations alongside
  /// monitor mismatches. Traps on a healthy binary usually indicate a
  /// corrupted program store -- exactly what reinstall fixes.
  bool count_traps = true;
};

/// What the caller (the MPSoC) must do after reporting an outcome.
enum class RecoveryAction : std::uint8_t {
  None,       // nothing beyond the per-packet reset the core already did
  Reinstall,  // re-image the core from its last-good config
  Quarantine, // the controller just quarantined the core
};

class RecoveryController {
 public:
  explicit RecoveryController(std::size_t num_cores,
                              RecoveryConfig config = {});

  const RecoveryConfig& config() const { return config_; }
  std::size_t num_cores() const { return cores_.size(); }

  /// Report one packet outcome for `core`; returns the action the policy
  /// demands. Quarantined/offline cores report None (they should not be
  /// receiving packets at all).
  RecoveryAction on_outcome(std::size_t core, PacketOutcome outcome);

  /// Everything on_outcome changed, captured so a speculative outcome can
  /// be withdrawn exactly (the parallel engine rolls outcomes back when a
  /// recovery epoch rewinds past them).
  struct OutcomeUndo {
    bool applied = false;            // core was Healthy; effects occurred
    bool violation = false;
    bool quarantined = false;        // this call performed the quarantine
    bool reinstall_requested = false;
    bool prev_bit = false;           // overwritten window slot
    std::size_t prev_pos = 0;
    std::size_t prev_fill = 0;
    std::size_t prev_violations = 0;
    std::size_t prev_reinstalls = 0;
  };

  /// on_outcome with an undo record. Thread contract: per-core state may
  /// only be touched by the thread currently holding that core's turn;
  /// the global tallies are relaxed atomics so concurrent reporters on
  /// *different* cores are safe.
  RecoveryAction on_outcome_speculative(std::size_t core,
                                        PacketOutcome outcome,
                                        OutcomeUndo& undo);

  /// Exactly invert a prior on_outcome_speculative (same core, undo
  /// records applied in reverse report order).
  void undo_outcome(std::size_t core, const OutcomeUndo& undo);

  CoreHealth health(std::size_t core) const {
    return cores_[core].health.load(std::memory_order_relaxed);
  }
  bool dispatchable(std::size_t core) const {
    return health(core) == CoreHealth::Healthy;
  }

  /// Administrative transitions.
  void set_offline(std::size_t core, bool offline);
  void quarantine(std::size_t core);
  /// Operator releases a quarantined/offline core back to service with a
  /// clean violation window.
  void release(std::size_t core);

  /// The MPSoC calls this after acting on RecoveryAction::Reinstall so
  /// the escalation counter and window restart cleanly.
  void note_reinstall(std::size_t core);

  /// Violations currently inside `core`'s sliding window.
  std::size_t window_violations(std::size_t core) const {
    return cores_[core].window_violations;
  }

  std::uint64_t total_violations() const {
    return total_violations_.load(std::memory_order_relaxed);
  }
  std::uint64_t quarantine_events() const {
    return quarantine_events_.load(std::memory_order_relaxed);
  }
  std::uint64_t reinstall_requests() const {
    return reinstall_requests_.load(std::memory_order_relaxed);
  }
  std::size_t healthy_cores() const;
  std::size_t quarantined_cores() const;
  std::size_t offline_cores() const;

 private:
  struct CoreState {
    // Atomic because the parallel engine's planner polls dispatchable()
    // while an executor may quarantine the core; all other fields are
    // guarded by the per-core turn ordering.
    std::atomic<CoreHealth> health{CoreHealth::Healthy};
    std::vector<bool> window;        // ring buffer of recent outcomes
    std::size_t window_pos = 0;
    std::size_t window_fill = 0;
    std::size_t window_violations = 0;
    std::size_t reinstalls = 0;      // consecutive re-images (escalation)
  };

  void clear_window(CoreState& state);

  RecoveryConfig config_;
  std::vector<CoreState> cores_;
  std::atomic<std::uint64_t> total_violations_{0};
  std::atomic<std::uint64_t> quarantine_events_{0};
  std::atomic<std::uint64_t> reinstall_requests_{0};
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_RECOVERY_HPP
