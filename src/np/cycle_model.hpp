// Cycle-cost model of the PLASMA-like soft core: maps a retired
// instruction mix onto cycles so simulator packet counts translate into
// modeled packets-per-second at the prototype's 100 MHz clock. Costs are
// the classic single-issue embedded profile: 1 cycle ALU, an extra cycle
// of load-use latency, a taken-branch refetch bubble, and a multi-cycle
// iterative multiply/divide unit.
#ifndef SDMMON_NP_CYCLE_MODEL_HPP
#define SDMMON_NP_CYCLE_MODEL_HPP

#include <cstdint>

#include "isa/isa.hpp"

namespace sdmmon::np {

/// Cumulative retired-instruction mix of a core.
struct InstrMix {
  std::uint64_t alu = 0;
  std::uint64_t load = 0;
  std::uint64_t store = 0;
  std::uint64_t branch_not_taken = 0;
  std::uint64_t branch_taken = 0;
  std::uint64_t jump = 0;       // j/jal/jr/jalr
  std::uint64_t muldiv = 0;     // mult/multu/div/divu
  std::uint64_t trap = 0;

  std::uint64_t total() const {
    return alu + load + store + branch_not_taken + branch_taken + jump +
           muldiv + trap;
  }

  InstrMix operator-(const InstrMix& rhs) const {
    return InstrMix{alu - rhs.alu,
                    load - rhs.load,
                    store - rhs.store,
                    branch_not_taken - rhs.branch_not_taken,
                    branch_taken - rhs.branch_taken,
                    jump - rhs.jump,
                    muldiv - rhs.muldiv,
                    trap - rhs.trap};
  }
};

struct CycleCosts {
  double alu = 1.0;
  double load = 2.0;              // 1 + load-use bubble
  double store = 1.0;
  double branch_not_taken = 1.0;
  double branch_taken = 2.0;      // refetch bubble
  double jump = 2.0;
  double muldiv = 12.0;           // iterative unit
  double trap = 1.0;
};

class CycleModel {
 public:
  explicit CycleModel(CycleCosts costs = {}, double clock_hz = 100e6)
      : costs_(costs), clock_hz_(clock_hz) {}

  double cycles(const InstrMix& mix) const {
    return static_cast<double>(mix.alu) * costs_.alu +
           static_cast<double>(mix.load) * costs_.load +
           static_cast<double>(mix.store) * costs_.store +
           static_cast<double>(mix.branch_not_taken) * costs_.branch_not_taken +
           static_cast<double>(mix.branch_taken) * costs_.branch_taken +
           static_cast<double>(mix.jump) * costs_.jump +
           static_cast<double>(mix.muldiv) * costs_.muldiv +
           static_cast<double>(mix.trap) * costs_.trap;
  }

  double seconds(const InstrMix& mix) const {
    return cycles(mix) / clock_hz_;
  }

  /// Cycles-per-instruction of the mix (1.0 = ideal single-issue).
  double cpi(const InstrMix& mix) const {
    const std::uint64_t n = mix.total();
    return n == 0 ? 0.0 : cycles(mix) / static_cast<double>(n);
  }

  double clock_hz() const { return clock_hz_; }

 private:
  CycleCosts costs_;
  double clock_hz_;
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_CYCLE_MODEL_HPP
