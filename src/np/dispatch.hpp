// Dispatch-policy core selection, shared verbatim between the serial
// Mpsoc and the parallel engine so the two cannot drift: the differential
// test suite asserts bit-identical dispatch decisions, and both engines
// funnel through this one function to make that hold by construction.
#ifndef SDMMON_NP_DISPATCH_HPP
#define SDMMON_NP_DISPATCH_HPP

#include <cstdint>
#include <vector>

namespace sdmmon::np {

enum class DispatchPolicy : std::uint8_t {
  RoundRobin,
  FlowHash,     // same flow key -> same core (stable per-flow ordering)
  // Core with the lowest instruction load. The serial engine feeds exact
  // retired counts; the sharded parallel engine feeds RELAXED load --
  // committed (folded) instructions plus a mean-cost estimate for packets
  // planned onto the core but still in flight -- so placement may diverge
  // from the serial engine while packets are speculated. batch_size=1
  // empties the flight window at every plan and restores exactness (the
  // diff suite pins both contracts).
  LeastLoaded,
};

/// Pick one entry of `active` (must be non-empty, ascending core indices).
/// `rr_next` is the RoundRobin cursor: it is consumed and advanced only by
/// RoundRobin dispatch, exactly once per dispatched packet. `load` maps a
/// core index to its LeastLoaded metric; ties break toward the lowest
/// active index (strict less-than keeps the first minimum).
template <typename LoadFn>
std::size_t pick_dispatch_core(DispatchPolicy policy,
                               const std::vector<std::size_t>& active,
                               std::uint32_t flow_key, std::size_t& rr_next,
                               LoadFn&& load) {
  switch (policy) {
    case DispatchPolicy::FlowHash:
      // Fibonacci hashing spreads sequential flow keys. Hashing over the
      // *active* list remaps flows off quarantined cores while flows on
      // surviving cores stay put as long as the active set is stable.
      return active[(flow_key * 2654435761u) % active.size()];
    case DispatchPolicy::LeastLoaded: {
      std::size_t best = active[0];
      std::uint64_t best_load = load(active[0]);
      for (std::size_t i = 1; i < active.size(); ++i) {
        const std::uint64_t candidate = load(active[i]);
        if (candidate < best_load) {
          best = active[i];
          best_load = candidate;
        }
      }
      return best;
    }
    case DispatchPolicy::RoundRobin:
      break;
  }
  return active[rr_next++ % active.size()];
}

}  // namespace sdmmon::np

#endif  // SDMMON_NP_DISPATCH_HPP
