#include "np/mpsoc.hpp"

namespace sdmmon::np {

Mpsoc::Mpsoc(std::size_t num_cores, DispatchPolicy policy)
    : cores_(num_cores), policy_(policy) {}

void Mpsoc::install_all(const isa::Program& program,
                        const monitor::MonitoringGraph& graph,
                        const monitor::InstructionHash& hash) {
  for (auto& core : cores_) {
    core.install(program, graph, hash.clone());
  }
}

void Mpsoc::install(std::size_t core_index, const isa::Program& program,
                    monitor::MonitoringGraph graph,
                    std::unique_ptr<monitor::InstructionHash> hash) {
  cores_.at(core_index).install(program, std::move(graph), std::move(hash));
}

std::size_t Mpsoc::pick_core(std::uint32_t flow_key) {
  switch (policy_) {
    case DispatchPolicy::FlowHash:
      // Fibonacci hashing spreads sequential flow keys.
      return (flow_key * 2654435761u) % cores_.size();
    case DispatchPolicy::LeastLoaded: {
      std::size_t best = 0;
      for (std::size_t c = 1; c < cores_.size(); ++c) {
        if (cores_[c].stats().instructions <
            cores_[best].stats().instructions) {
          best = c;
        }
      }
      return best;
    }
    case DispatchPolicy::RoundRobin:
      break;
  }
  std::size_t index = next_;
  next_ = (next_ + 1) % cores_.size();
  return index;
}

PacketResult Mpsoc::process_packet(std::span<const std::uint8_t> packet,
                                   std::uint32_t flow_key) {
  return cores_[pick_core(flow_key)].process_packet(packet);
}

CoreStats Mpsoc::aggregate_stats() const {
  CoreStats sum;
  for (const auto& core : cores_) {
    const CoreStats& s = core.stats();
    sum.packets += s.packets;
    sum.forwarded += s.forwarded;
    sum.dropped += s.dropped;
    sum.attacks_detected += s.attacks_detected;
    sum.traps += s.traps;
    sum.instructions += s.instructions;
  }
  return sum;
}

}  // namespace sdmmon::np
