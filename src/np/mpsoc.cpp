#include "np/mpsoc.hpp"

namespace sdmmon::np {

std::unique_ptr<EngineObs> EngineObs::create(obs::Registry& registry,
                                             std::size_t num_cores,
                                             std::uint32_t device_id,
                                             bool parallel) {
  auto obs = std::make_unique<EngineObs>();
  obs->registry = &registry;
  obs->journal = &registry.journal();
  obs->dispatched = &registry.counter(obs::names::kEngineDispatched);
  obs->undispatched = &registry.counter(obs::names::kEngineUndispatched);
  obs->installs = &registry.counter(obs::names::kEngineInstalls);
  obs->quarantines = &registry.counter(obs::names::kEngineQuarantines);
  obs->reinstalls = &registry.counter(obs::names::kEngineReinstalls);
  obs->healthy_cores = &registry.gauge(obs::names::kEngineHealthyCores);
  obs->window_occupancy = &registry.histogram(
      obs::names::kRecoveryWindowOccupancy, obs::width_buckets());
  obs->reinstall_ns = &registry.histogram(obs::names::kRecoveryReinstallNs,
                                          obs::latency_ns_buckets());
  obs->graph_compile_ns = &registry.histogram(
      obs::names::kEngineGraphCompileNs, obs::latency_ns_buckets());
  obs->compiled_nodes =
      &registry.gauge(obs::names::kEngineCompiledGraphNodes);
  obs->compiled_edges =
      &registry.gauge(obs::names::kEngineCompiledGraphEdges);
  obs->compiled_bytes =
      &registry.gauge(obs::names::kEngineCompiledGraphBytes);
  obs->predecode_ns = &registry.histogram(obs::names::kCorePredecodeNs,
                                          obs::latency_ns_buckets());
  obs->compiled_ops =
      &registry.gauge(obs::names::kEngineCompiledProgramOps);
  obs->compiled_blocks =
      &registry.gauge(obs::names::kEngineCompiledProgramBlocks);
  obs->compiled_program_bytes =
      &registry.gauge(obs::names::kEngineCompiledProgramBytes);
  obs->block_fuse_ns = &registry.histogram(obs::names::kCoreBlockFuseNs,
                                           obs::latency_ns_buckets());
  obs->fused_runs = &registry.gauge(obs::names::kEngineFusedRuns);
  obs->fused_ops = &registry.gauge(obs::names::kEngineFusedOps);
  obs->trace_exec_ns = &registry.histogram(obs::names::kCoreTraceExecNs,
                                           obs::latency_ns_buckets());
  obs->trace_count = &registry.gauge(obs::names::kEngineTraceCount);
  obs->trace_ops = &registry.gauge(obs::names::kEngineTraceOps);
  obs->trace_side_exit_rate =
      &registry.gauge(obs::names::kEngineTraceSideExitRate);
  if (parallel) {
    obs->shard_steals = &registry.counter(obs::names::kParallelShardSteals);
    obs->shard_epochs = &registry.counter(obs::names::kParallelShardEpochs);
    obs->shard_queue_depth = &registry.histogram(
        obs::names::kParallelShardQueueDepth, obs::depth_buckets());
    obs->rollbacks = &registry.counter(obs::names::kParallelRollbacks);
    obs->replayed_packets =
        &registry.counter(obs::names::kParallelReplayedPackets);
    obs->rollback_bytes =
        &registry.counter(obs::names::kParallelRollbackBytes);
    obs->snapshot_dirty_pages = &registry.histogram(
        obs::names::kCoreSnapshotDirtyPages, obs::depth_buckets());
  }
  obs->device_id = device_id;
  obs->cores.reserve(num_cores);
  const std::uint32_t period = registry.sample_period();
  for (std::size_t c = 0; c < num_cores; ++c) {
    obs->cores.push_back(
        CoreObs::create(registry, static_cast<std::uint32_t>(c), period));
  }
  return obs;
}

void EngineObs::record_outcome(std::uint64_t cycle, std::size_t core,
                               const PacketResult& result,
                               RecoveryAction action,
                               std::size_t window_violations,
                               const RecoveryController& recovery) {
  const std::uint32_t core32 = static_cast<std::uint32_t>(core);
  if (result.outcome == PacketOutcome::AttackDetected) {
    journal->record({obs::EventKind::AttackDetected, cycle, core32,
                     device_id, result.monitor_width});
  } else if (result.outcome == PacketOutcome::Trapped) {
    journal->record({obs::EventKind::Trap, cycle, core32, device_id,
                     static_cast<std::uint64_t>(result.trap)});
  }
  if (result.trace_dispatches > 0) {
    // Folded in serial commit order, so the rate is deterministic
    // across the serial and parallel engines.
    trace_dispatches_total += result.trace_dispatches;
    trace_side_exits_total += result.trace_side_exits;
    trace_side_exit_rate->set(static_cast<std::int64_t>(
        trace_side_exits_total * 1000 / trace_dispatches_total));
  }
  window_occupancy->record(window_violations);
  if (action == RecoveryAction::Quarantine) {
    quarantines->add(1);
    journal->record({obs::EventKind::Quarantine, cycle, core32, device_id,
                     window_violations});
    healthy_cores->set(
        static_cast<std::int64_t>(recovery.healthy_cores()));
  }
  // Reinstall bookkeeping happens in reinstall_core (shared with the
  // re-image path), where the wall-clock cost is also measured.
}

void EngineObs::note_compiled(const monitor::CompiledGraph& graph) {
  compiled_nodes->set(static_cast<std::int64_t>(graph.num_nodes()));
  compiled_edges->set(static_cast<std::int64_t>(graph.num_edges()));
  compiled_bytes->set(static_cast<std::int64_t>(graph.footprint_bytes()));
}

void EngineObs::note_predecoded(const CompiledProgram& code) {
  compiled_ops->set(static_cast<std::int64_t>(code.num_ops()));
  compiled_blocks->set(static_cast<std::int64_t>(code.num_blocks()));
  compiled_program_bytes->set(
      static_cast<std::int64_t>(code.footprint_bytes()));
  block_fuse_ns->record(code.fuse_build_ns());
  fused_runs->set(static_cast<std::int64_t>(code.num_fused_runs()));
  fused_ops->set(static_cast<std::int64_t>(code.num_fused_ops()));
  trace_exec_ns->record(code.trace_build_ns());
  trace_count->set(static_cast<std::int64_t>(code.num_traces()));
  trace_ops->set(static_cast<std::int64_t>(code.num_trace_ops()));
}

Mpsoc::Mpsoc(std::size_t num_cores, DispatchPolicy policy,
             RecoveryConfig recovery)
    : cores_(num_cores),
      last_good_(num_cores),
      policy_(policy),
      recovery_(num_cores, recovery) {}

InstallArtifacts validate_install_config(const isa::Program& program,
                                         const monitor::MonitoringGraph& graph,
                                         const monitor::InstructionHash& hash) {
  // Compilation is itself the graph-validation step: the compiler throws
  // on structurally malformed graphs before any real core is touched.
  // Predecoding is total (undecodable words become trapping ops), so it
  // can never fail on text the staging core accepted.
  InstallArtifacts artifacts;
  artifacts.graph = monitor::CompiledGraph::compile(graph);
  artifacts.code = CompiledProgram::compile(program, hash);
  validate_install_config(program, artifacts, hash);
  return artifacts;
}

void validate_install_config(const isa::Program& program,
                             const InstallArtifacts& artifacts,
                             const monitor::InstructionHash& hash) {
  // The scratch install exercises exactly what the real one will:
  // load_program's memory-map fit and artifact/program match checks plus
  // the artifact/hash spot-check in MonitoredCore::install.
  MonitoredCore probe;
  probe.install(program, artifacts.graph, artifacts.code, hash.clone());
}

void Mpsoc::enable_obs(obs::Registry& registry, std::uint32_t device_id,
                       std::uint32_t sample_period) {
#if SDMMON_OBS_ENABLED
  registry.set_sample_period(sample_period);
  obs_ = EngineObs::create(registry, cores_.size(), device_id,
                           /*parallel=*/false);
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    cores_[c].attach_obs(&obs_->cores[c]);
  }
  obs_->healthy_cores->set(
      static_cast<std::int64_t>(recovery_.healthy_cores()));
#else
  (void)registry;
  (void)device_id;
  (void)sample_period;
#endif
}

void Mpsoc::install_all(const isa::Program& program,
                        const monitor::MonitoringGraph& graph,
                        const monitor::InstructionHash& hash) {
  InstallArtifacts artifacts;
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->graph_compile_ns : nullptr);
#endif
    artifacts.graph = monitor::CompiledGraph::compile(graph);
  }
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, hash);
  }
  validate_install_config(program, artifacts, hash);
  install_all(program, std::move(artifacts), hash);
}

void Mpsoc::install_all(const isa::Program& program,
                        std::shared_ptr<const monitor::CompiledGraph> graph,
                        const monitor::InstructionHash& hash) {
  InstallArtifacts artifacts{std::move(graph), nullptr};
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, hash);
  }
  install_all(program, std::move(artifacts), hash);
}

void Mpsoc::install_all(const isa::Program& program,
                        InstallArtifacts artifacts,
                        const monitor::InstructionHash& hash) {
  validate_install_config(program, artifacts, hash);
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    cores_[c].install(program, artifacts.graph, artifacts.code,
                      hash.clone());
    last_good_[c] = LastGoodConfig{program, artifacts, hash.clone()};
  }
#if SDMMON_OBS_ENABLED
  if (obs_) {
    obs_->installs->add(1);
    obs_->note_compiled(*artifacts.graph);
    if (artifacts.code) obs_->note_predecoded(*artifacts.code);
    obs_->journal->record({obs::EventKind::Install,
                           obs_->dispatched->value(), obs::kAllCores,
                           obs_->device_id, program.text.size()});
  }
#endif
}

void Mpsoc::install(std::size_t core_index, const isa::Program& program,
                    monitor::MonitoringGraph graph,
                    std::unique_ptr<monitor::InstructionHash> hash) {
  InstallArtifacts artifacts;
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->graph_compile_ns : nullptr);
#endif
    artifacts.graph = monitor::CompiledGraph::compile(std::move(graph));
  }
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, *hash);
  }
  install(core_index, program, std::move(artifacts), std::move(hash));
}

void Mpsoc::install(std::size_t core_index, const isa::Program& program,
                    std::shared_ptr<const monitor::CompiledGraph> graph,
                    std::unique_ptr<monitor::InstructionHash> hash) {
  InstallArtifacts artifacts{std::move(graph), nullptr};
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->predecode_ns : nullptr);
#endif
    artifacts.code = CompiledProgram::compile(program, *hash);
  }
  install(core_index, program, std::move(artifacts), std::move(hash));
}

void Mpsoc::install(std::size_t core_index, const isa::Program& program,
                    InstallArtifacts artifacts,
                    std::unique_ptr<monitor::InstructionHash> hash) {
  validate_install_config(program, artifacts, *hash);
  last_good_.at(core_index) =
      LastGoodConfig{program, artifacts, hash->clone()};
  cores_.at(core_index).install(program, std::move(artifacts.graph),
                                std::move(artifacts.code), std::move(hash));
#if SDMMON_OBS_ENABLED
  if (obs_) {
    obs_->installs->add(1);
    obs_->note_compiled(*cores_[core_index].monitor().compiled());
    if (const auto& code = cores_[core_index].core().compiled_program()) {
      obs_->note_predecoded(*code);
    }
    obs_->journal->record({obs::EventKind::Install,
                           obs_->dispatched->value(),
                           static_cast<std::uint32_t>(core_index),
                           obs_->device_id, program.text.size()});
  }
#endif
}

void Mpsoc::note_admin_transition(std::size_t index, obs::EventKind kind) {
#if SDMMON_OBS_ENABLED
  if (obs_) {
    obs_->journal->record({kind, obs_->dispatched->value(),
                           static_cast<std::uint32_t>(index),
                           obs_->device_id, 0});
    obs_->healthy_cores->set(
        static_cast<std::int64_t>(recovery_.healthy_cores()));
  }
#else
  (void)index;
  (void)kind;
#endif
}

std::vector<std::size_t> Mpsoc::active_cores() const {
  std::vector<std::size_t> active;
  active.reserve(cores_.size());
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (core_dispatchable(c)) active.push_back(c);
  }
  return active;
}

std::size_t Mpsoc::pick_core(const std::vector<std::size_t>& active,
                             std::uint32_t flow_key) {
  return pick_dispatch_core(policy_, active, flow_key, next_,
                            [this](std::size_t core) {
                              return cores_[core].stats().instructions;
                            });
}

void Mpsoc::reinstall_core(std::size_t index) {
  const std::optional<LastGoodConfig>& good = last_good_[index];
  if (!good) return;  // nothing to re-image from; policy degrades to reset
  {
#if SDMMON_OBS_ENABLED
    obs::ScopedTimerNs timer(obs_ ? obs_->reinstall_ns : nullptr);
#endif
    cores_[index].install(good->program, good->artifacts.graph,
                          good->artifacts.code, good->hash->clone());
  }
  recovery_.note_reinstall(index);
  ++reinstalls_;
#if SDMMON_OBS_ENABLED
  if (obs_) {
    obs_->reinstalls->add(1);
    obs_->journal->record({obs::EventKind::Reinstall,
                           obs_->dispatched->value(),
                           static_cast<std::uint32_t>(index),
                           obs_->device_id, 0});
  }
#endif
}

PacketResult Mpsoc::process_packet(std::span<const std::uint8_t> packet,
                                   std::uint32_t flow_key) {
  std::vector<std::size_t> active = active_cores();
  if (active.empty()) {
    // Fully degraded (or nothing installed yet): drop, never crash.
    ++undispatched_;
#if SDMMON_OBS_ENABLED
    if (obs_) obs_->undispatched->add(1);
#endif
    PacketResult result;
    result.outcome = PacketOutcome::Dropped;
    return result;
  }
  std::size_t index = pick_core(active, flow_key);
  PacketResult result = cores_[index].process_packet(packet);
  const RecoveryAction action = recovery_.on_outcome(index, result.outcome);
#if SDMMON_OBS_ENABLED
  if (obs_) {
    obs_->dispatched->add(1);
    obs_->record_outcome(obs_->dispatched->value(), index, result, action,
                         recovery_.window_violations(index), recovery_);
  }
#endif
  switch (action) {
    case RecoveryAction::None:
      break;
    case RecoveryAction::Reinstall:
      reinstall_core(index);
      break;
    case RecoveryAction::Quarantine:
      // Controller already moved the core out of the dispatch set; the
      // next packet's active_cores() no longer contains it.
      break;
  }
  return result;
}

MpsocStats Mpsoc::aggregate_stats() const {
  MpsocStats sum;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const CoreStats& s = cores_[c].stats();
    sum.packets += s.packets;
    sum.forwarded += s.forwarded;
    sum.dropped += s.dropped;
    sum.attacks_detected += s.attacks_detected;
    sum.traps += s.traps;
    sum.instructions += s.instructions;
    switch (recovery_.health(c)) {
      case CoreHealth::Healthy:
        if (cores_[c].installed()) {
          ++sum.healthy_cores;
        } else {
          ++sum.uninstalled_cores;
        }
        break;
      case CoreHealth::Quarantined:
        ++sum.quarantined_cores;
        break;
      case CoreHealth::Offline:
        ++sum.offline_cores;
        break;
    }
  }
  sum.total_cores = cores_.size();
  sum.undispatched = undispatched_;
  sum.violations = recovery_.total_violations();
  sum.quarantine_events = recovery_.quarantine_events();
  sum.reinstalls = reinstalls_;
  return sum;
}

}  // namespace sdmmon::np
