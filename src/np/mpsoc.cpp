#include "np/mpsoc.hpp"

namespace sdmmon::np {

Mpsoc::Mpsoc(std::size_t num_cores, DispatchPolicy policy,
             RecoveryConfig recovery)
    : cores_(num_cores),
      last_good_(num_cores),
      policy_(policy),
      recovery_(num_cores, recovery) {}

void validate_install_config(const isa::Program& program,
                             const monitor::MonitoringGraph& graph,
                             const monitor::InstructionHash& hash) {
  Core scratch;
  scratch.load_program(program);
  monitor::HardwareMonitor probe(graph, hash.clone());
}

void Mpsoc::install_all(const isa::Program& program,
                        const monitor::MonitoringGraph& graph,
                        const monitor::InstructionHash& hash) {
  validate_install_config(program, graph, hash);
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    cores_[c].install(program, graph, hash.clone());
    last_good_[c] = LastGoodConfig{program, graph, hash.clone()};
  }
}

void Mpsoc::install(std::size_t core_index, const isa::Program& program,
                    monitor::MonitoringGraph graph,
                    std::unique_ptr<monitor::InstructionHash> hash) {
  validate_install_config(program, graph, *hash);
  last_good_.at(core_index) = LastGoodConfig{program, graph, hash->clone()};
  cores_.at(core_index).install(program, std::move(graph), std::move(hash));
}

std::vector<std::size_t> Mpsoc::active_cores() const {
  std::vector<std::size_t> active;
  active.reserve(cores_.size());
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    if (core_dispatchable(c)) active.push_back(c);
  }
  return active;
}

std::size_t Mpsoc::pick_core(const std::vector<std::size_t>& active,
                             std::uint32_t flow_key) {
  return pick_dispatch_core(policy_, active, flow_key, next_,
                            [this](std::size_t core) {
                              return cores_[core].stats().instructions;
                            });
}

void Mpsoc::reinstall_core(std::size_t index) {
  const std::optional<LastGoodConfig>& good = last_good_[index];
  if (!good) return;  // nothing to re-image from; policy degrades to reset
  cores_[index].install(good->program, good->graph, good->hash->clone());
  recovery_.note_reinstall(index);
  ++reinstalls_;
}

PacketResult Mpsoc::process_packet(std::span<const std::uint8_t> packet,
                                   std::uint32_t flow_key) {
  std::vector<std::size_t> active = active_cores();
  if (active.empty()) {
    // Fully degraded (or nothing installed yet): drop, never crash.
    ++undispatched_;
    PacketResult result;
    result.outcome = PacketOutcome::Dropped;
    return result;
  }
  std::size_t index = pick_core(active, flow_key);
  PacketResult result = cores_[index].process_packet(packet);
  switch (recovery_.on_outcome(index, result.outcome)) {
    case RecoveryAction::None:
      break;
    case RecoveryAction::Reinstall:
      reinstall_core(index);
      break;
    case RecoveryAction::Quarantine:
      // Controller already moved the core out of the dispatch set; the
      // next packet's active_cores() no longer contains it.
      break;
  }
  return result;
}

MpsocStats Mpsoc::aggregate_stats() const {
  MpsocStats sum;
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const CoreStats& s = cores_[c].stats();
    sum.packets += s.packets;
    sum.forwarded += s.forwarded;
    sum.dropped += s.dropped;
    sum.attacks_detected += s.attacks_detected;
    sum.traps += s.traps;
    sum.instructions += s.instructions;
    switch (recovery_.health(c)) {
      case CoreHealth::Healthy:
        if (cores_[c].installed()) {
          ++sum.healthy_cores;
        } else {
          ++sum.uninstalled_cores;
        }
        break;
      case CoreHealth::Quarantined:
        ++sum.quarantined_cores;
        break;
      case CoreHealth::Offline:
        ++sum.offline_cores;
        break;
    }
  }
  sum.total_cores = cores_.size();
  sum.undispatched = undispatched_;
  sum.violations = recovery_.total_violations();
  sum.quarantine_events = recovery_.quarantine_events();
  sum.reinstalls = reinstalls_;
  return sum;
}

}  // namespace sdmmon::np
