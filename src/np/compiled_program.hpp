// Install-time predecoding of a program's text segment into the flat,
// immutable artifact the core's hot loop actually executes. The wire
// format ships raw 32-bit instruction words (what gets signed and what
// the monitor hashes); re-decoding the same word and re-evaluating the
// Merkle hash tree on every execution of every instruction is pure
// redundancy -- both are functions of (word, hash parameter) fixed at
// install time. CompiledProgram lowers the text once into an array of
// predecoded micro-ops, each carrying the decoded isa::Instr, the raw
// word, the precomputed w-bit monitor hash under the installed
// InstructionHash, and basic-block-boundary flags, so Core::step()
// becomes an indexed fetch plus the execute switch and the monitor check
// becomes a byte load fed straight into HardwareMonitor::on_hashed().
//
// Like monitor::CompiledGraph (the PR-4 precedent this mirrors), a
// CompiledProgram is immutable after compile() and is shared as
// std::shared_ptr<const CompiledProgram> by every core of an MPSoC, by
// the LastGoodConfig recovery snapshot, and by the device application
// store: installing, fast-switching, and quarantine re-imaging swap a
// pointer, never re-decode.
//
// Unified memory has no execute protection, so programs can overwrite
// their own text (and code-injection attacks do). The artifact is a
// pure cache of the *installed image*: the core watches stores into the
// predecoded text range, marks the artifact stale, and falls back to the
// word-at-a-time interpreter until the next full reset() re-images the
// text. Undecodable words predecode to a trapping op (kDecoded clear),
// never undefined behavior -- executing one raises Trap::DecodeFault
// exactly as the interpreter would.
//
// Block fusion (docs/EXECUTION.md): on top of the per-op tables the
// compile pass folds each basic block's *body* -- the maximal
// straight-line stretch of decoded non-control-flow ops (ALU, loads,
// stores; everything that either retires to pc+4 or raises a trap) --
// into two parallel install-time tables:
//   * hash_lane_[i]: the precomputed monitor hash of op i, contiguous,
//     so a whole block's hashes feed HardwareMonitor::advance() as one
//     slice instead of one on_hashed() call per instruction;
//   * fused_run_[i]: the length of the maximal fusible run starting at
//     op i (0 when op i is not fusible), truncated at the block end, so
//     the core's superop executor (Core::exec_fused_run) retires the
//     block body in one computed-goto dispatch loop.
// Fusible ops may trap (overflow, MemFault) and may touch memory, so
// the fused schedule is execute-first: the executor stops *before* any
// op that would trap or touch MMIO and stops *after* a store that
// dirties the predecoded text, then reports exactly how many ops
// retired; MonitoredCore feeds the monitor precisely that many hashes.
// That makes the fused schedule bit-identical to the interpreted
// interleaving (the equivalence argument lives in docs/EXECUTION.md
// and is enforced by tests/core_fuse_diff_test).
//
// Trace (superblock) formation (docs/EXECUTION.md, tier 4): block
// fusion stops at every basic-block boundary, but branchy data-plane
// code spends most of its retirement on short blocks glued by highly
// predictable branches. The compile pass therefore also stitches, per
// block leader, a *trace*: starting at the leader it follows
// fall-through body ops, unconditional jumps (j/jal), and statically
// predicted conditional branches (backward = taken, forward = not
// taken -- the classic loop heuristic) across block boundaries until
// it reaches an indirect jump, a trap op, an undecodable word, a
// predicted target outside the text, or the 255-op cap. Each TraceOp
// carries its own pc (trace pcs are not contiguous; loops unroll), the
// decoded instr, raw word, precomputed monitor hash, and a
// predicted-taken flag that doubles as the side-exit record: when the
// core's trace executor (Core::exec_trace) resolves a branch against
// its prediction it retires that branch and *side-exits*, and
// MonitoredCore retracts only the monitor-unchecked overshoot, so the
// tier stays bit-identical to the interpreter oracle
// (tests/core_trace_diff_test).
#ifndef SDMMON_NP_COMPILED_PROGRAM_HPP
#define SDMMON_NP_COMPILED_PROGRAM_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "isa/isa.hpp"
#include "isa/program.hpp"
#include "monitor/hash.hpp"

namespace sdmmon::np {

class CompiledProgram {
 public:
  /// One predecoded text word. 16 bytes; the superblock stepper walks
  /// these sequentially, so one cache line holds four ops.
  struct PreOp {
    isa::Instr instr;        // valid iff flags & kDecoded
    std::uint32_t word = 0;  // raw encoding (what the monitor hashes)
    std::uint8_t mhash = 0;  // precomputed monitor hash of `word`
    std::uint8_t flags = 0;
  };

  /// PreOp::flags bits.
  static constexpr std::uint8_t kDecoded = 0x01;   // instr is valid
  static constexpr std::uint8_t kBlockEnd = 0x02;  // last op of a basic block

  /// One op of a formed trace (superblock). Unlike PreOp, trace ops are
  /// not indexed by pc -- a trace's pcs jump across blocks and may
  /// repeat (loop unrolling) -- so each op carries its own pc.
  struct TraceOp {
    isa::Instr instr;        // always decoded (formation skips others)
    std::uint32_t pc = 0;    // address this op was fetched from
    std::uint32_t word = 0;  // raw encoding
    std::uint8_t mhash = 0;  // precomputed monitor hash of `word`
    std::uint8_t flags = 0;
  };

  /// TraceOp::flags bits.
  static constexpr std::uint8_t kTracePredTaken = 0x04;  // branch predicted taken

  /// Formed traces are capped like fused runs; the cap also guarantees
  /// formation terminates on unrolled loops.
  static constexpr std::uint32_t kTraceCap = 255;

  /// A trace anchored at one pc: `len` ops with a parallel contiguous
  /// hash lane (hashes[i] == ops[i].mhash). len == 0 when no trace is
  /// anchored there.
  struct TraceRef {
    const TraceOp* ops = nullptr;
    const std::uint8_t* hashes = nullptr;
    std::uint32_t len = 0;
  };

  /// Decode every text word once and precompute its monitor hash under
  /// `hash` (the parameterized unit installed with the program). Block
  /// boundaries come from monitor::analysis::find_basic_blocks, so the
  /// superblock stepper and the monitoring graph agree on extents.
  /// Undecodable words become trapping ops (kDecoded clear) that also
  /// end their block. Never throws on strange text -- the artifact is
  /// total over the installed image.
  static std::shared_ptr<const CompiledProgram> compile(
      const isa::Program& program, const monitor::InstructionHash& hash);

  std::uint32_t text_base() const { return text_base_; }
  /// Bytes of predecoded text ([text_base, text_base + text_bytes)).
  std::uint32_t text_bytes() const { return text_bytes_; }
  std::size_t num_ops() const { return ops_.size(); }
  /// Basic blocks in the predecoded text (np.engine gauge).
  std::size_t num_blocks() const { return num_blocks_; }

  /// Width/name of the hash the mhash table was computed under. The
  /// parameter itself is secret (it never leaves the InstructionHash),
  /// so install paths verify consistency by spot-checking mhash values
  /// against the installed unit instead of comparing names.
  int hash_width() const { return hash_width_; }
  const std::string& hash_name() const { return hash_name_; }

  /// Raw op array for the core's cached-pointer hot path.
  const PreOp* ops_data() const { return ops_.data(); }

  /// True for ops the fused executor may attempt in a batch: decoded
  /// block-body ops (ALU, load, store classes). Fusible ops either
  /// retire to pc+4 or stop the batch (would-trap, MMIO access); only
  /// control flow and syscall/break are excluded, and those end the
  /// block anyway. The static contract Core::exec_fused_run relies on.
  static bool fusible_op(isa::Op op);

  /// Contiguous per-op monitor hashes (hash_lane_[i] == ops_[i].mhash):
  /// the precomputed hash slice MonitoredCore feeds to
  /// HardwareMonitor::advance() one fused run at a time.
  const std::uint8_t* hash_lane_data() const { return hash_lane_.data(); }

  /// fused_run_data()[i] = length of the maximal fusible run starting
  /// at op i (see fusible_op), truncated at the basic-block end and
  /// capped at 255; 0 when op i itself is not fusible. Indexed by
  /// (pc - base)/4 exactly like ops_data(), so mid-block entry
  /// (jr/jalr into a block interior) fuses the remaining suffix
  /// naturally.
  const std::uint8_t* fused_run_data() const { return fused_run_.data(); }

  /// Maximal fused runs in the artifact / ops covered by them (the
  /// np.engine.fused_runs / np.engine.fused_ops install gauges).
  std::size_t num_fused_runs() const { return num_fused_runs_; }
  std::size_t num_fused_ops() const { return num_fused_ops_; }

  /// Wall-clock cost of building the fusion tables inside compile()
  /// (the np.core.block_fuse_ns install histogram) -- the slice of
  /// predecode_ns attributable to fusion.
  std::uint64_t fuse_build_ns() const { return fuse_build_ns_; }

  /// The trace anchored at `pc` (len == 0 when none: pc outside the
  /// text, misaligned, not a block leader, or the candidate trace never
  /// beat plain block fusion).
  TraceRef trace_at(std::uint32_t pc) const {
    const std::uint32_t off = pc - text_base_;
    if (off >= text_bytes_ || (off & 3u) != 0) return {};
    const std::uint32_t len = trace_len_[off >> 2];
    if (len == 0) return {};
    const std::uint32_t at = trace_off_[off >> 2];
    return {trace_ops_.data() + at, trace_hash_lane_.data() + at, len};
  }

  /// Per-op trace tables for the core's cached-pointer hot path,
  /// indexed by (pc - base)/4 like ops_data(). trace_len_data()[i] is
  /// the length of the trace anchored at op i (0: none);
  /// trace_off_data()[i] is its offset into trace_ops_data() /
  /// trace_hash_lane_data() (parallel flat arrays holding every formed
  /// trace concatenated).
  const std::uint8_t* trace_len_data() const { return trace_len_.data(); }
  const std::uint32_t* trace_off_data() const { return trace_off_.data(); }
  const TraceOp* trace_ops_data() const { return trace_ops_.data(); }
  const std::uint8_t* trace_hash_lane_data() const {
    return trace_hash_lane_.data();
  }

  /// Formed traces / total trace ops (the np.engine.trace_count /
  /// np.engine.trace_ops install gauges).
  std::size_t num_traces() const { return num_traces_; }
  std::size_t num_trace_ops() const { return num_trace_ops_; }

  /// Wall-clock cost of the trace-formation pass inside compile() (the
  /// np.core.trace_exec_ns install histogram).
  std::uint64_t trace_build_ns() const { return trace_build_ns_; }

  /// Precomputed monitor hash of the instruction at `pc`. Returns false
  /// when `pc` is outside (or misaligned within) the predecoded text --
  /// the caller falls back to hashing the fetched word.
  bool monitor_hash(std::uint32_t pc, std::uint8_t& out) const {
    const std::uint32_t off = pc - text_base_;
    if (off >= text_bytes_ || (off & 3u) != 0) return false;
    out = ops_[off >> 2].mhash;
    return true;
  }

  /// Bytes of flat predecoded state (the np.engine.compiled_program_bytes
  /// gauge). Excludes the retained source program, which is cold.
  std::size_t footprint_bytes() const {
    return ops_.size() * sizeof(PreOp) + hash_lane_.size() +
           fused_run_.size() + trace_ops_.size() * sizeof(TraceOp) +
           trace_hash_lane_.size() + trace_len_.size() +
           trace_off_.size() * sizeof(std::uint32_t);
  }

  /// The program this artifact was predecoded from (what gets signed,
  /// re-imaged at reset, and re-verified by install staging).
  const isa::Program& source() const { return source_; }

 private:
  CompiledProgram() = default;

  isa::Program source_;
  std::uint32_t text_base_ = 0;
  std::uint32_t text_bytes_ = 0;
  std::size_t num_blocks_ = 0;
  std::size_t num_fused_runs_ = 0;
  std::size_t num_fused_ops_ = 0;
  std::size_t num_traces_ = 0;
  std::size_t num_trace_ops_ = 0;
  std::uint64_t fuse_build_ns_ = 0;
  std::uint64_t trace_build_ns_ = 0;
  int hash_width_ = 0;
  std::string hash_name_;
  std::vector<PreOp> ops_;
  std::vector<std::uint8_t> hash_lane_;  // mhash per op, contiguous
  std::vector<std::uint8_t> fused_run_;  // fused-run length per op
  std::vector<std::uint8_t> trace_len_;  // trace length per op (0: none)
  std::vector<std::uint32_t> trace_off_;  // offset into trace_ops_
  std::vector<TraceOp> trace_ops_;        // all traces, concatenated
  std::vector<std::uint8_t> trace_hash_lane_;  // mhash per trace op
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_COMPILED_PROGRAM_HPP
