// Install-time predecoding of a program's text segment into the flat,
// immutable artifact the core's hot loop actually executes. The wire
// format ships raw 32-bit instruction words (what gets signed and what
// the monitor hashes); re-decoding the same word and re-evaluating the
// Merkle hash tree on every execution of every instruction is pure
// redundancy -- both are functions of (word, hash parameter) fixed at
// install time. CompiledProgram lowers the text once into an array of
// predecoded micro-ops, each carrying the decoded isa::Instr, the raw
// word, the precomputed w-bit monitor hash under the installed
// InstructionHash, and basic-block-boundary flags, so Core::step()
// becomes an indexed fetch plus the execute switch and the monitor check
// becomes a byte load fed straight into HardwareMonitor::on_hashed().
//
// Like monitor::CompiledGraph (the PR-4 precedent this mirrors), a
// CompiledProgram is immutable after compile() and is shared as
// std::shared_ptr<const CompiledProgram> by every core of an MPSoC, by
// the LastGoodConfig recovery snapshot, and by the device application
// store: installing, fast-switching, and quarantine re-imaging swap a
// pointer, never re-decode.
//
// Unified memory has no execute protection, so programs can overwrite
// their own text (and code-injection attacks do). The artifact is a
// pure cache of the *installed image*: the core watches stores into the
// predecoded text range, marks the artifact stale, and falls back to the
// word-at-a-time interpreter until the next full reset() re-images the
// text. Undecodable words predecode to a trapping op (kDecoded clear),
// never undefined behavior -- executing one raises Trap::DecodeFault
// exactly as the interpreter would.
//
// Block fusion (docs/EXECUTION.md): on top of the per-op tables the
// compile pass folds each basic block's *body* -- the maximal
// straight-line stretch of decoded non-control-flow ops (ALU, loads,
// stores; everything that either retires to pc+4 or raises a trap) --
// into two parallel install-time tables:
//   * hash_lane_[i]: the precomputed monitor hash of op i, contiguous,
//     so a whole block's hashes feed HardwareMonitor::advance() as one
//     slice instead of one on_hashed() call per instruction;
//   * fused_run_[i]: the length of the maximal fusible run starting at
//     op i (0 when op i is not fusible), truncated at the block end, so
//     the core's superop executor (Core::exec_fused_run) retires the
//     block body in one computed-goto dispatch loop.
// Fusible ops may trap (overflow, MemFault) and may touch memory, so
// the fused schedule is execute-first: the executor stops *before* any
// op that would trap or touch MMIO and stops *after* a store that
// dirties the predecoded text, then reports exactly how many ops
// retired; MonitoredCore feeds the monitor precisely that many hashes.
// That makes the fused schedule bit-identical to the interpreted
// interleaving (the equivalence argument lives in docs/EXECUTION.md
// and is enforced by tests/core_fuse_diff_test).
#ifndef SDMMON_NP_COMPILED_PROGRAM_HPP
#define SDMMON_NP_COMPILED_PROGRAM_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "isa/isa.hpp"
#include "isa/program.hpp"
#include "monitor/hash.hpp"

namespace sdmmon::np {

class CompiledProgram {
 public:
  /// One predecoded text word. 16 bytes; the superblock stepper walks
  /// these sequentially, so one cache line holds four ops.
  struct PreOp {
    isa::Instr instr;        // valid iff flags & kDecoded
    std::uint32_t word = 0;  // raw encoding (what the monitor hashes)
    std::uint8_t mhash = 0;  // precomputed monitor hash of `word`
    std::uint8_t flags = 0;
  };

  /// PreOp::flags bits.
  static constexpr std::uint8_t kDecoded = 0x01;   // instr is valid
  static constexpr std::uint8_t kBlockEnd = 0x02;  // last op of a basic block

  /// Decode every text word once and precompute its monitor hash under
  /// `hash` (the parameterized unit installed with the program). Block
  /// boundaries come from monitor::analysis::find_basic_blocks, so the
  /// superblock stepper and the monitoring graph agree on extents.
  /// Undecodable words become trapping ops (kDecoded clear) that also
  /// end their block. Never throws on strange text -- the artifact is
  /// total over the installed image.
  static std::shared_ptr<const CompiledProgram> compile(
      const isa::Program& program, const monitor::InstructionHash& hash);

  std::uint32_t text_base() const { return text_base_; }
  /// Bytes of predecoded text ([text_base, text_base + text_bytes)).
  std::uint32_t text_bytes() const { return text_bytes_; }
  std::size_t num_ops() const { return ops_.size(); }
  /// Basic blocks in the predecoded text (np.engine gauge).
  std::size_t num_blocks() const { return num_blocks_; }

  /// Width/name of the hash the mhash table was computed under. The
  /// parameter itself is secret (it never leaves the InstructionHash),
  /// so install paths verify consistency by spot-checking mhash values
  /// against the installed unit instead of comparing names.
  int hash_width() const { return hash_width_; }
  const std::string& hash_name() const { return hash_name_; }

  /// Raw op array for the core's cached-pointer hot path.
  const PreOp* ops_data() const { return ops_.data(); }

  /// True for ops the fused executor may attempt in a batch: decoded
  /// block-body ops (ALU, load, store classes). Fusible ops either
  /// retire to pc+4 or stop the batch (would-trap, MMIO access); only
  /// control flow and syscall/break are excluded, and those end the
  /// block anyway. The static contract Core::exec_fused_run relies on.
  static bool fusible_op(isa::Op op);

  /// Contiguous per-op monitor hashes (hash_lane_[i] == ops_[i].mhash):
  /// the precomputed hash slice MonitoredCore feeds to
  /// HardwareMonitor::advance() one fused run at a time.
  const std::uint8_t* hash_lane_data() const { return hash_lane_.data(); }

  /// fused_run_data()[i] = length of the maximal fusible run starting
  /// at op i (see fusible_op), truncated at the basic-block end and
  /// capped at 255; 0 when op i itself is not fusible. Indexed by
  /// (pc - base)/4 exactly like ops_data(), so mid-block entry
  /// (jr/jalr into a block interior) fuses the remaining suffix
  /// naturally.
  const std::uint8_t* fused_run_data() const { return fused_run_.data(); }

  /// Maximal fused runs in the artifact / ops covered by them (the
  /// np.engine.fused_runs / np.engine.fused_ops install gauges).
  std::size_t num_fused_runs() const { return num_fused_runs_; }
  std::size_t num_fused_ops() const { return num_fused_ops_; }

  /// Wall-clock cost of building the fusion tables inside compile()
  /// (the np.core.block_fuse_ns install histogram) -- the slice of
  /// predecode_ns attributable to fusion.
  std::uint64_t fuse_build_ns() const { return fuse_build_ns_; }

  /// Precomputed monitor hash of the instruction at `pc`. Returns false
  /// when `pc` is outside (or misaligned within) the predecoded text --
  /// the caller falls back to hashing the fetched word.
  bool monitor_hash(std::uint32_t pc, std::uint8_t& out) const {
    const std::uint32_t off = pc - text_base_;
    if (off >= text_bytes_ || (off & 3u) != 0) return false;
    out = ops_[off >> 2].mhash;
    return true;
  }

  /// Bytes of flat predecoded state (the np.engine.compiled_program_bytes
  /// gauge). Excludes the retained source program, which is cold.
  std::size_t footprint_bytes() const {
    return ops_.size() * sizeof(PreOp) + hash_lane_.size() +
           fused_run_.size();
  }

  /// The program this artifact was predecoded from (what gets signed,
  /// re-imaged at reset, and re-verified by install staging).
  const isa::Program& source() const { return source_; }

 private:
  CompiledProgram() = default;

  isa::Program source_;
  std::uint32_t text_base_ = 0;
  std::uint32_t text_bytes_ = 0;
  std::size_t num_blocks_ = 0;
  std::size_t num_fused_runs_ = 0;
  std::size_t num_fused_ops_ = 0;
  std::uint64_t fuse_build_ns_ = 0;
  int hash_width_ = 0;
  std::string hash_name_;
  std::vector<PreOp> ops_;
  std::vector<std::uint8_t> hash_lane_;  // mhash per op, contiguous
  std::vector<std::uint8_t> fused_run_;  // fused-run length per op
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_COMPILED_PROGRAM_HPP
