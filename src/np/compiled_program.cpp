#include "np/compiled_program.hpp"

#include <chrono>

#include "monitor/analysis.hpp"

namespace sdmmon::np {

bool CompiledProgram::fusible_op(isa::Op op) {
  // Block-body ops: ALU (including overflow-trapping Add/Addi/Sub),
  // loads, and stores. The execute-first fused schedule handles their
  // trap and MMIO cases by stopping the batch before the offending op,
  // so unlike the original pure-run fusion nothing here needs to be
  // trap-free. Excluded: control flow (ends the block) and
  // Syscall/Break (Trap class -- also ends the block).
  switch (isa::op_class(op)) {
    case isa::OpClass::Alu:
    case isa::OpClass::Load:
    case isa::OpClass::Store:
      return true;
    default:
      return false;
  }
}

std::shared_ptr<const CompiledProgram> CompiledProgram::compile(
    const isa::Program& program, const monitor::InstructionHash& hash) {
  auto compiled = std::shared_ptr<CompiledProgram>(new CompiledProgram());
  compiled->source_ = program;
  compiled->text_base_ = program.text_base;
  compiled->text_bytes_ =
      static_cast<std::uint32_t>(program.text.size() * 4);
  compiled->hash_width_ = hash.width();
  compiled->hash_name_ = hash.name();

  // Block leaders from the same analysis that shapes the monitoring
  // graph (find_basic_blocks is total: undecodable words end a block).
  const monitor::BasicBlocks blocks = monitor::find_basic_blocks(program);
  compiled->num_blocks_ = blocks.leaders.size();

  const std::size_t n = program.text.size();
  compiled->ops_.resize(n);
  std::size_t next_leader = 1;  // leaders[0] == 0 whenever n > 0
  for (std::size_t i = 0; i < n; ++i) {
    PreOp& op = compiled->ops_[i];
    op.word = program.text[i];
    op.mhash = hash.hash(op.word);

    bool block_end = i + 1 == n;
    if (next_leader < blocks.leaders.size() &&
        blocks.leaders[next_leader] == i + 1) {
      block_end = true;
      ++next_leader;
    }

    if (auto decoded = isa::try_decode(op.word)) {
      op.instr = *decoded;
      op.flags = kDecoded;
      // Belt and braces: any op that can redirect or end control flow
      // ends its block even if the leader list ever disagreed -- the
      // superblock stepper's fall-through invariant must never break.
      switch (isa::op_class(op.instr.op)) {
        case isa::OpClass::Branch:
        case isa::OpClass::Jump:
        case isa::OpClass::JumpLink:
        case isa::OpClass::JumpReg:
        case isa::OpClass::Trap:
          block_end = true;
          break;
        default:
          break;
      }
    } else {
      op.flags = 0;  // trapping op: executing it raises DecodeFault
      block_end = true;
    }
    if (block_end) op.flags |= kBlockEnd;
  }

  // Fusion pass: fold the per-op hashes into a contiguous lane and
  // compute, per op, the length of the maximal fusible run (block body)
  // starting there (suffix scan; a run never crosses a block end, so
  // the superop executor retires at most one basic block per dispatch).
  const auto fuse_start = std::chrono::steady_clock::now();
  compiled->hash_lane_.resize(n);
  compiled->fused_run_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    compiled->hash_lane_[i] = compiled->ops_[i].mhash;
  }
  for (std::size_t i = n; i-- > 0;) {
    const PreOp& op = compiled->ops_[i];
    if (!(op.flags & kDecoded) || !fusible_op(op.instr.op)) {
      compiled->fused_run_[i] = 0;
      continue;
    }
    std::uint32_t run = 1;
    if (!(op.flags & kBlockEnd) && i + 1 < n) {
      run += compiled->fused_run_[i + 1];
      if (run > 255) run = 255;
    }
    compiled->fused_run_[i] = static_cast<std::uint8_t>(run);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (compiled->fused_run_[i] == 0) continue;
    // A maximal run starts at i when no run covers i from the left.
    const bool covered =
        i > 0 && compiled->fused_run_[i - 1] != 0 &&
        !(compiled->ops_[i - 1].flags & kBlockEnd) &&
        compiled->fused_run_[i - 1] != 255;
    if (!covered) {
      ++compiled->num_fused_runs_;
    }
    ++compiled->num_fused_ops_;
  }
  compiled->fuse_build_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - fuse_start)
          .count());

  // Trace-formation pass: from each block leader, stitch a superblock
  // by following fall-through, unconditional jumps, and statically
  // predicted branches (backward = taken, forward = not taken). A
  // trace is only kept when it beats what block fusion already covers
  // at that pc: at least two ops AND at least one control-flow op or
  // block-boundary crossing.
  const auto trace_start = std::chrono::steady_clock::now();
  compiled->trace_len_.assign(n, 0);
  compiled->trace_off_.assign(n, 0);
  std::vector<TraceOp> buf;
  buf.reserve(kTraceCap);
  for (const std::uint32_t leader : blocks.leaders) {
    buf.clear();
    bool crossed = false;  // crosses a block end or contains control flow
    std::uint32_t pc = compiled->text_base_ + leader * 4;
    while (buf.size() < kTraceCap) {
      const std::uint32_t off = pc - compiled->text_base_;
      if (off >= compiled->text_bytes_) break;  // left the text
      const PreOp& op = compiled->ops_[off >> 2];
      if (!(op.flags & kDecoded)) break;  // would trap: interpreter's job
      TraceOp top;
      top.instr = op.instr;
      top.pc = pc;
      top.word = op.word;
      top.mhash = op.mhash;
      bool stop = false;
      switch (isa::op_class(op.instr.op)) {
        case isa::OpClass::Alu:
        case isa::OpClass::Load:
        case isa::OpClass::Store:
          // Body op: falling through a block end here is exactly the
          // superblock win (a jump target lands mid-stream).
          if (op.flags & kBlockEnd) crossed = true;
          buf.push_back(top);
          pc += 4;
          break;
        case isa::OpClass::Branch: {
          crossed = true;
          const std::uint32_t target =
              pc + 4 + static_cast<std::uint32_t>(op.instr.imm) * 4;
          if (op.instr.imm < 0) {
            // Backward branch: predict taken (the loop heuristic).
            top.flags |= kTracePredTaken;
            buf.push_back(top);
            if (target - compiled->text_base_ >= compiled->text_bytes_) {
              stop = true;  // predicted target escapes the text
            } else {
              pc = target;
            }
          } else {
            // Forward branch: predict not taken, fall through.
            buf.push_back(top);
            pc += 4;
          }
          break;
        }
        case isa::OpClass::Jump:
        case isa::OpClass::JumpLink: {
          crossed = true;
          const std::uint32_t target = op.instr.target * 4;
          buf.push_back(top);
          if (target - compiled->text_base_ >= compiled->text_bytes_) {
            stop = true;  // jump leaves the text: trace ends with it
          } else {
            pc = target;
          }
          break;
        }
        default:
          // JumpReg (indirect) and Trap ops never enter a trace.
          stop = true;
          break;
      }
      if (stop) break;
    }
    if (buf.size() < 2 || !crossed) continue;
    compiled->trace_off_[leader] =
        static_cast<std::uint32_t>(compiled->trace_ops_.size());
    compiled->trace_len_[leader] = static_cast<std::uint8_t>(buf.size());
    for (const TraceOp& top : buf) {
      compiled->trace_ops_.push_back(top);
      compiled->trace_hash_lane_.push_back(top.mhash);
    }
    ++compiled->num_traces_;
    compiled->num_trace_ops_ += buf.size();
  }
  compiled->trace_build_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_start)
          .count());
  return compiled;
}

}  // namespace sdmmon::np
