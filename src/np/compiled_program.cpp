#include "np/compiled_program.hpp"

#include "monitor/analysis.hpp"

namespace sdmmon::np {

std::shared_ptr<const CompiledProgram> CompiledProgram::compile(
    const isa::Program& program, const monitor::InstructionHash& hash) {
  auto compiled = std::shared_ptr<CompiledProgram>(new CompiledProgram());
  compiled->source_ = program;
  compiled->text_base_ = program.text_base;
  compiled->text_bytes_ =
      static_cast<std::uint32_t>(program.text.size() * 4);
  compiled->hash_width_ = hash.width();
  compiled->hash_name_ = hash.name();

  // Block leaders from the same analysis that shapes the monitoring
  // graph (find_basic_blocks is total: undecodable words end a block).
  const monitor::BasicBlocks blocks = monitor::find_basic_blocks(program);
  compiled->num_blocks_ = blocks.leaders.size();

  const std::size_t n = program.text.size();
  compiled->ops_.resize(n);
  std::size_t next_leader = 1;  // leaders[0] == 0 whenever n > 0
  for (std::size_t i = 0; i < n; ++i) {
    PreOp& op = compiled->ops_[i];
    op.word = program.text[i];
    op.mhash = hash.hash(op.word);

    bool block_end = i + 1 == n;
    if (next_leader < blocks.leaders.size() &&
        blocks.leaders[next_leader] == i + 1) {
      block_end = true;
      ++next_leader;
    }

    if (auto decoded = isa::try_decode(op.word)) {
      op.instr = *decoded;
      op.flags = kDecoded;
      // Belt and braces: any op that can redirect or end control flow
      // ends its block even if the leader list ever disagreed -- the
      // superblock stepper's fall-through invariant must never break.
      switch (isa::op_class(op.instr.op)) {
        case isa::OpClass::Branch:
        case isa::OpClass::Jump:
        case isa::OpClass::JumpLink:
        case isa::OpClass::JumpReg:
        case isa::OpClass::Trap:
          block_end = true;
          break;
        default:
          break;
      }
    } else {
      op.flags = 0;  // trapping op: executing it raises DecodeFault
      block_end = true;
    }
    if (block_end) op.flags |= kBlockEnd;
  }
  return compiled;
}

}  // namespace sdmmon::np
