// A network-processor core wired to its hardware monitor (paper Figure 1):
// every retired instruction word is reported through the parameterizable
// hash unit to the monitor; a mismatch triggers the recovery path -- the
// packet is dropped and the core's processing stack reset before the next
// packet, exactly the paper's IP-network recovery argument (Section 2.1).
#ifndef SDMMON_NP_MONITORED_CORE_HPP
#define SDMMON_NP_MONITORED_CORE_HPP

#include <memory>
#include <optional>

#include "monitor/monitor.hpp"
#include "np/core.hpp"
#include "obs/obs.hpp"

namespace sdmmon::np {

enum class PacketOutcome : std::uint8_t {
  Forwarded,       // handler committed an output packet
  Dropped,         // handler finished without output
  AttackDetected,  // monitor mismatch; core reset, packet dropped
  Trapped,         // core trap (fault/overflow/watchdog); packet dropped
};

const char* packet_outcome_name(PacketOutcome outcome);

struct PacketResult {
  PacketOutcome outcome = PacketOutcome::Dropped;
  util::Bytes output;               // valid when outcome == Forwarded
  std::uint32_t output_port = 0;    // egress port chosen by the app
  std::uint64_t instructions = 0;   // instructions retired for this packet
  Trap trap = Trap::None;           // valid when outcome == Trapped
  /// Peak NFA tracked-state width while this packet executed. Captured
  /// at execute time so the observability layer can histogram it on the
  /// deterministic commit path (exact even across speculative rollback).
  std::uint32_t monitor_width = 0;
  /// Trace-tier telemetry: exec_trace dispatches this packet took, and
  /// how many of them ended in a side exit (branch resolved off the
  /// predicted path). Feeds np.engine.trace_side_exit_rate on the
  /// deterministic commit path.
  std::uint32_t trace_dispatches = 0;
  std::uint32_t trace_side_exits = 0;
};

/// Cumulative per-core counters.
struct CoreStats {
  std::uint64_t packets = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t attacks_detected = 0;
  std::uint64_t traps = 0;
  std::uint64_t instructions = 0;
};

/// Cached observability handles for one core (metric names in
/// obs/names.hpp, per-core ".<i>" suffix). Created by the owning engine
/// (or a tool) via CoreObs::create; the MonitoredCore keeps a non-owning
/// pointer and updates the handles on its commit path only, so counters
/// and histograms stay exact and deterministic even when the parallel
/// engine executes speculatively. Serialized-writer: commits happen under
/// the engine's fold lock (or on the serial engine's only thread), so
/// `tick` needs no synchronization of its own.
struct CoreObs {
  obs::Counter* packets = nullptr;
  obs::Counter* forwarded = nullptr;
  obs::Counter* dropped = nullptr;
  obs::Counter* attacks = nullptr;
  obs::Counter* traps = nullptr;
  obs::Counter* instructions = nullptr;
  obs::Histogram* instr_per_packet = nullptr;
  obs::Histogram* ndfa_width = nullptr;
  std::uint32_t core_id = 0;
  /// Record histograms every Nth committed packet (counters are never
  /// sampled). Deterministic: the tick advances with committed packets.
  std::uint32_t sample_period = 1;
  std::uint64_t tick = 0;

  static CoreObs create(obs::Registry& registry, std::uint32_t core_id,
                        std::uint32_t sample_period = 1);
  void on_commit(const PacketResult& result);
};

class MonitoredCore {
 public:
  /// Construct with monitoring disabled (no program installed yet).
  MonitoredCore();

  /// Preferred: install a (binary, compiled graph, predecoded program,
  /// hash) configuration -- the step SDMMon authenticates. Both artifacts
  /// are shared, not copied: every core of an MPSoC holds the same
  /// pointers, and a quarantine re-image from LastGoodConfig is a pair of
  /// pointer swaps. The hash unit's parameter is part of `hash`; `code`
  /// carries that hash's precomputed per-instruction values, so the
  /// monitor check becomes on_hashed(byte load). `code` may be null
  /// (word-at-a-time interpretation, no precomputed hashes).
  void install(const isa::Program& program,
               std::shared_ptr<const monitor::CompiledGraph> graph,
               std::shared_ptr<const CompiledProgram> code,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Convenience: predecode the program privately, then install.
  void install(const isa::Program& program,
               std::shared_ptr<const monitor::CompiledGraph> graph,
               std::unique_ptr<monitor::InstructionHash> hash);

  /// Convenience: compile a wire-format graph privately, then install.
  void install(const isa::Program& program, monitor::MonitoringGraph graph,
               std::unique_ptr<monitor::InstructionHash> hash);

  bool installed() const { return monitor_ != nullptr; }

  /// Process one packet to completion (reset -> deliver -> run).
  /// Equivalent to execute_packet() followed by commit_result().
  PacketResult process_packet(std::span<const std::uint8_t> packet);

  /// Run one packet WITHOUT touching the cumulative CoreStats. All memory
  /// and monitor effects (soft reset, data-RAM writes, attack reset)
  /// happen exactly as in process_packet; only the counters are deferred.
  /// The parallel engine executes speculatively on worker threads and
  /// commits results in serial packet order at the batch barrier, which
  /// keeps CoreStats bit-identical to the serial engine even when a batch
  /// is partially rolled back. Requires installed().
  PacketResult execute_packet(std::span<const std::uint8_t> packet);

  /// Fold one execute_packet() result into the cumulative CoreStats,
  /// updating exactly the counters process_packet would have.
  void commit_result(const PacketResult& result);

  /// Everything one speculative execute_packet() changed on this core
  /// that the next packet could observe: the Core's cross-packet
  /// architectural state and the memory pages the execution dirtied.
  /// Known caveat (pre-existing, documented in ARCHITECTURE.md): the
  /// monitor's internal MonitorStats are not captured, so its cumulative
  /// instruction tallies overcount rolled-back packets.
  struct SpecUndo {
    Core::SpecState core_state;
    std::vector<Memory::PageCopy> pages;
    /// Pages dirtied by the speculative execution (== pages.size();
    /// feeds np.core.snapshot_dirty_pages).
    std::size_t dirty_pages() const { return pages.size(); }
  };

  /// Bracket one speculative execute_packet(): begin_speculation() arms
  /// dirty-page capture and snapshots the cross-packet core state;
  /// end_speculation() disarms capture and returns the undo record;
  /// rollback_speculation() restores both (pages in reverse touch order).
  /// When undoing several packets on one core, roll back newest-first.
  void begin_speculation();
  SpecUndo end_speculation();
  void rollback_speculation(const SpecUndo& undo);

  const CoreStats& stats() const { return stats_; }
  Core& core() { return core_; }
  const monitor::HardwareMonitor& monitor() const { return *monitor_; }

  /// When true (default), mismatches stop the core immediately. Disabling
  /// lets benchmarks measure the unmonitored baseline on identical inputs.
  void set_enforcement(bool on) { enforce_ = on; }

  /// Attach (or detach with nullptr) cached metric handles; `obs` must
  /// outlive the core or the next attach. No-op cost when detached; the
  /// whole site compiles out with SDMMON_OBS=OFF.
  void attach_obs(CoreObs* obs) { obs_ = obs; }

 private:
  PacketResult run_packet(std::span<const std::uint8_t> packet);

  Core core_;
  // Raw view of the core's predecoded artifact, cached at install so the
  // per-retired-instruction monitor feed dereferences no smart pointer.
  const CompiledProgram* pre_ = nullptr;
  std::unique_ptr<monitor::HardwareMonitor> monitor_;
  CoreStats stats_;
  bool enforce_ = true;
  CoreObs* obs_ = nullptr;
  // Cross-packet core state snapshotted by begin_speculation(), handed
  // out by end_speculation(). One speculation may be active at a time.
  Core::SpecState spec_state_;
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_MONITORED_CORE_HPP
