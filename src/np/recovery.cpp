#include "np/recovery.hpp"

namespace sdmmon::np {

const char* core_health_name(CoreHealth health) {
  switch (health) {
    case CoreHealth::Healthy: return "healthy";
    case CoreHealth::Quarantined: return "quarantined";
    case CoreHealth::Offline: return "offline";
  }
  return "?";
}

const char* recovery_policy_name(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::ResetAndContinue: return "reset-and-continue";
    case RecoveryPolicy::QuarantineAfterK: return "quarantine-after-k";
    case RecoveryPolicy::ReinstallLastGood: return "reinstall-last-good";
  }
  return "?";
}

RecoveryController::RecoveryController(std::size_t num_cores,
                                       RecoveryConfig config)
    : config_(config), cores_(num_cores) {
  if (config_.window_packets == 0) config_.window_packets = 1;
  if (config_.violation_threshold == 0) config_.violation_threshold = 1;
  for (auto& state : cores_) {
    state.window.assign(config_.window_packets, false);
  }
}

void RecoveryController::clear_window(CoreState& state) {
  state.window.assign(config_.window_packets, false);
  state.window_pos = 0;
  state.window_fill = 0;
  state.window_violations = 0;
}

RecoveryAction RecoveryController::on_outcome(std::size_t core,
                                              PacketOutcome outcome) {
  OutcomeUndo undo;
  return on_outcome_speculative(core, outcome, undo);
}

RecoveryAction RecoveryController::on_outcome_speculative(std::size_t core,
                                                          PacketOutcome outcome,
                                                          OutcomeUndo& undo) {
  CoreState& state = cores_[core];
  undo = OutcomeUndo{};
  if (state.health.load(std::memory_order_relaxed) != CoreHealth::Healthy) {
    return RecoveryAction::None;
  }
  undo.applied = true;
  undo.prev_pos = state.window_pos;
  undo.prev_fill = state.window_fill;
  undo.prev_violations = state.window_violations;
  undo.prev_reinstalls = state.reinstalls;
  undo.prev_bit = state.window[state.window_pos];

  const bool violation =
      outcome == PacketOutcome::AttackDetected ||
      (config_.count_traps && outcome == PacketOutcome::Trapped);
  undo.violation = violation;
  if (violation) total_violations_.fetch_add(1, std::memory_order_relaxed);

  // Slide the window by one packet.
  if (state.window[state.window_pos]) --state.window_violations;
  state.window[state.window_pos] = violation;
  if (violation) ++state.window_violations;
  state.window_pos = (state.window_pos + 1) % config_.window_packets;
  if (state.window_fill < config_.window_packets) ++state.window_fill;

  // A clean packet also de-escalates the reinstall counter: the last
  // re-image evidently took, so future incidents restart the ladder.
  if (!violation && state.reinstalls > 0 && state.window_violations == 0) {
    state.reinstalls = 0;
  }

  if (state.window_violations < config_.violation_threshold) {
    return RecoveryAction::None;
  }

  switch (config_.policy) {
    case RecoveryPolicy::ResetAndContinue:
      return RecoveryAction::None;
    case RecoveryPolicy::QuarantineAfterK:
      quarantine(core);
      undo.quarantined = true;
      return RecoveryAction::Quarantine;
    case RecoveryPolicy::ReinstallLastGood:
      if (state.reinstalls >= config_.max_reinstalls) {
        quarantine(core);
        undo.quarantined = true;
        return RecoveryAction::Quarantine;
      }
      reinstall_requests_.fetch_add(1, std::memory_order_relaxed);
      undo.reinstall_requested = true;
      return RecoveryAction::Reinstall;
  }
  return RecoveryAction::None;
}

void RecoveryController::undo_outcome(std::size_t core,
                                      const OutcomeUndo& undo) {
  if (!undo.applied) return;
  CoreState& state = cores_[core];
  if (undo.quarantined) {
    state.health.store(CoreHealth::Healthy, std::memory_order_relaxed);
    quarantine_events_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (undo.reinstall_requested) {
    reinstall_requests_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (undo.violation) {
    total_violations_.fetch_sub(1, std::memory_order_relaxed);
  }
  state.window[undo.prev_pos] = undo.prev_bit;
  state.window_pos = undo.prev_pos;
  state.window_fill = undo.prev_fill;
  state.window_violations = undo.prev_violations;
  state.reinstalls = undo.prev_reinstalls;
}

void RecoveryController::set_offline(std::size_t core, bool offline) {
  CoreState& state = cores_[core];
  if (offline) {
    state.health.store(CoreHealth::Offline, std::memory_order_relaxed);
  } else if (state.health.load(std::memory_order_relaxed) ==
             CoreHealth::Offline) {
    state.health.store(CoreHealth::Healthy, std::memory_order_relaxed);
    clear_window(state);
    state.reinstalls = 0;
  }
}

void RecoveryController::quarantine(std::size_t core) {
  CoreState& state = cores_[core];
  if (state.health.load(std::memory_order_relaxed) ==
      CoreHealth::Quarantined) {
    return;
  }
  state.health.store(CoreHealth::Quarantined, std::memory_order_relaxed);
  quarantine_events_.fetch_add(1, std::memory_order_relaxed);
}

void RecoveryController::release(std::size_t core) {
  CoreState& state = cores_[core];
  state.health.store(CoreHealth::Healthy, std::memory_order_relaxed);
  clear_window(state);
  state.reinstalls = 0;
}

void RecoveryController::note_reinstall(std::size_t core) {
  CoreState& state = cores_[core];
  ++state.reinstalls;
  clear_window(state);
}

std::size_t RecoveryController::healthy_cores() const {
  std::size_t n = 0;
  for (const auto& state : cores_) {
    if (state.health.load(std::memory_order_relaxed) == CoreHealth::Healthy) {
      ++n;
    }
  }
  return n;
}

std::size_t RecoveryController::quarantined_cores() const {
  std::size_t n = 0;
  for (const auto& state : cores_) {
    if (state.health.load(std::memory_order_relaxed) ==
        CoreHealth::Quarantined) {
      ++n;
    }
  }
  return n;
}

std::size_t RecoveryController::offline_cores() const {
  std::size_t n = 0;
  for (const auto& state : cores_) {
    if (state.health.load(std::memory_order_relaxed) == CoreHealth::Offline) {
      ++n;
    }
  }
  return n;
}

}  // namespace sdmmon::np
