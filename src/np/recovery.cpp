#include "np/recovery.hpp"

namespace sdmmon::np {

const char* core_health_name(CoreHealth health) {
  switch (health) {
    case CoreHealth::Healthy: return "healthy";
    case CoreHealth::Quarantined: return "quarantined";
    case CoreHealth::Offline: return "offline";
  }
  return "?";
}

const char* recovery_policy_name(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::ResetAndContinue: return "reset-and-continue";
    case RecoveryPolicy::QuarantineAfterK: return "quarantine-after-k";
    case RecoveryPolicy::ReinstallLastGood: return "reinstall-last-good";
  }
  return "?";
}

RecoveryController::RecoveryController(std::size_t num_cores,
                                       RecoveryConfig config)
    : config_(config), cores_(num_cores) {
  if (config_.window_packets == 0) config_.window_packets = 1;
  if (config_.violation_threshold == 0) config_.violation_threshold = 1;
  for (auto& state : cores_) {
    state.window.assign(config_.window_packets, false);
  }
}

void RecoveryController::clear_window(CoreState& state) {
  state.window.assign(config_.window_packets, false);
  state.window_pos = 0;
  state.window_fill = 0;
  state.window_violations = 0;
}

RecoveryAction RecoveryController::on_outcome(std::size_t core,
                                              PacketOutcome outcome) {
  CoreState& state = cores_[core];
  if (state.health != CoreHealth::Healthy) return RecoveryAction::None;

  const bool violation =
      outcome == PacketOutcome::AttackDetected ||
      (config_.count_traps && outcome == PacketOutcome::Trapped);
  if (violation) ++total_violations_;

  // Slide the window by one packet.
  if (state.window[state.window_pos]) --state.window_violations;
  state.window[state.window_pos] = violation;
  if (violation) ++state.window_violations;
  state.window_pos = (state.window_pos + 1) % config_.window_packets;
  if (state.window_fill < config_.window_packets) ++state.window_fill;

  // A clean packet also de-escalates the reinstall counter: the last
  // re-image evidently took, so future incidents restart the ladder.
  if (!violation && state.reinstalls > 0 && state.window_violations == 0) {
    state.reinstalls = 0;
  }

  if (state.window_violations < config_.violation_threshold) {
    return RecoveryAction::None;
  }

  switch (config_.policy) {
    case RecoveryPolicy::ResetAndContinue:
      return RecoveryAction::None;
    case RecoveryPolicy::QuarantineAfterK:
      quarantine(core);
      return RecoveryAction::Quarantine;
    case RecoveryPolicy::ReinstallLastGood:
      if (state.reinstalls >= config_.max_reinstalls) {
        quarantine(core);
        return RecoveryAction::Quarantine;
      }
      ++reinstall_requests_;
      return RecoveryAction::Reinstall;
  }
  return RecoveryAction::None;
}

void RecoveryController::set_offline(std::size_t core, bool offline) {
  CoreState& state = cores_[core];
  if (offline) {
    state.health = CoreHealth::Offline;
  } else if (state.health == CoreHealth::Offline) {
    state.health = CoreHealth::Healthy;
    clear_window(state);
    state.reinstalls = 0;
  }
}

void RecoveryController::quarantine(std::size_t core) {
  CoreState& state = cores_[core];
  if (state.health == CoreHealth::Quarantined) return;
  state.health = CoreHealth::Quarantined;
  ++quarantine_events_;
}

void RecoveryController::release(std::size_t core) {
  CoreState& state = cores_[core];
  state.health = CoreHealth::Healthy;
  clear_window(state);
  state.reinstalls = 0;
}

void RecoveryController::note_reinstall(std::size_t core) {
  CoreState& state = cores_[core];
  ++state.reinstalls;
  clear_window(state);
}

std::size_t RecoveryController::healthy_cores() const {
  std::size_t n = 0;
  for (const auto& state : cores_) {
    if (state.health == CoreHealth::Healthy) ++n;
  }
  return n;
}

std::size_t RecoveryController::quarantined_cores() const {
  std::size_t n = 0;
  for (const auto& state : cores_) {
    if (state.health == CoreHealth::Quarantined) ++n;
  }
  return n;
}

std::size_t RecoveryController::offline_cores() const {
  std::size_t n = 0;
  for (const auto& state : cores_) {
    if (state.health == CoreHealth::Offline) ++n;
  }
  return n;
}

}  // namespace sdmmon::np
