// Flat region-based memory for one NP core. All regions are readable and
// writable and *all readable memory is executable* -- faithful to the
// simple embedded cores the paper targets and required for the
// code-injection attack path the monitor defends against.
//
// The memory additionally tracks writes at page granularity (kPageBytes):
//  * every page carries a "maybe nonzero" flag, so clear()/zero_region()
//    only scrub pages that were actually written since they were last
//    zeroed -- the per-packet soft reset costs O(bytes touched), not
//    O(region size);
//  * an optional *capture* records the pre-image of each page the first
//    time it is dirtied, so a speculative packet execution can be rolled
//    back by restoring only the touched pages (dirty-page snapshots for
//    the parallel engine) instead of copying whole-core state.
#ifndef SDMMON_NP_MEMORY_HPP
#define SDMMON_NP_MEMORY_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "np/memmap.hpp"
#include "util/bytes.hpp"

namespace sdmmon::np {

/// Why a memory access failed; becomes a core trap.
enum class MemFault {
  None,
  OutOfRange,
  Unaligned,
};

/// Dirty-page tracking granularity. Small enough that a packet touching a
/// few stack slots logs a few hundred bytes, large enough that the
/// per-store bookkeeping is one shift and one flag byte.
inline constexpr std::uint32_t kPageBytes = 256;

class Memory {
 public:
  /// Pre-image of one page, recorded by an active capture the first time
  /// the page is written. `addr` is the page-aligned guest address.
  struct PageCopy {
    std::uint32_t addr;
    util::Bytes bytes;
  };

  Memory();

  /// Zero all regions (used on full core reset). Only pages flagged
  /// maybe-nonzero are scrubbed.
  void clear();

  /// Zero the single region starting at `base` (page-skipping, capture
  /// aware). Used by the per-packet soft reset on stack/pktin/pktout.
  void zero_region(std::uint32_t base);

  // All accessors return/accept little-endian values (MIPS LE).
  std::optional<std::uint32_t> load32(std::uint32_t addr) const;
  std::optional<std::uint16_t> load16(std::uint32_t addr) const;
  std::optional<std::uint8_t> load8(std::uint32_t addr) const;
  MemFault store32(std::uint32_t addr, std::uint32_t value);
  MemFault store16(std::uint32_t addr, std::uint16_t value);
  MemFault store8(std::uint32_t addr, std::uint8_t value);

  /// Classify why a load failed (for trap reporting).
  MemFault load_fault(std::uint32_t addr, unsigned size) const;

  /// Bulk copy used by the loader and packet I/O (throws on overflow).
  void write_block(std::uint32_t addr, std::span<const std::uint8_t> data);
  util::Bytes read_block(std::uint32_t addr, std::size_t len) const;

  /// Start recording page pre-images. Any capture already in progress is
  /// discarded. Each page is logged at most once per capture, at its
  /// content before the first write under this capture.
  void begin_capture();

  /// Stop recording and hand the log to the caller. The log order is the
  /// first-touch order; restore in *reverse* to undo.
  std::vector<PageCopy> take_capture();

  /// Write page pre-images back (rollback). Call with a log from
  /// take_capture, iterating it in reverse order when undoing multiple
  /// captures newest-first. Restored pages are conservatively flagged
  /// maybe-nonzero.
  void restore_pages(std::span<const PageCopy> log);

 private:
  struct Region {
    std::uint32_t base;
    std::vector<std::uint8_t> bytes;
    // One entry per kPageBytes page. maybe_nonzero: clear => the page is
    // known all-zero (invariant maintained by clear/zero_region). stamp:
    // capture epoch of the last pre-image log, so a page is copied at
    // most once per capture.
    std::vector<std::uint8_t> maybe_nonzero;
    std::vector<std::uint32_t> stamp;
    bool contains(std::uint32_t addr, unsigned size) const {
      return addr >= base && addr + size <= base + bytes.size() &&
             addr + size > addr;
    }
  };

  const Region* find(std::uint32_t addr, unsigned size) const;
  Region* find(std::uint32_t addr, unsigned size);

  /// Record the page holding `addr` as written: log its pre-image if a
  /// capture is active and this is the first touch, and flag it
  /// maybe-nonzero. `addr` must lie inside `region`.
  void touch_page(Region& region, std::uint32_t addr);

  /// Zero one region's maybe-nonzero pages (shared by clear/zero_region).
  void scrub_region(Region& region);

  std::vector<Region> regions_;
  bool capture_on_ = false;
  std::uint32_t capture_epoch_ = 0;
  std::vector<PageCopy> capture_log_;
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_MEMORY_HPP
