// Flat region-based memory for one NP core. All regions are readable and
// writable and *all readable memory is executable* -- faithful to the
// simple embedded cores the paper targets and required for the
// code-injection attack path the monitor defends against.
#ifndef SDMMON_NP_MEMORY_HPP
#define SDMMON_NP_MEMORY_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "np/memmap.hpp"
#include "util/bytes.hpp"

namespace sdmmon::np {

/// Why a memory access failed; becomes a core trap.
enum class MemFault {
  None,
  OutOfRange,
  Unaligned,
};

class Memory {
 public:
  Memory();

  /// Zero all regions (used on core reset between packets).
  void clear();

  // All accessors return/accept little-endian values (MIPS LE).
  std::optional<std::uint32_t> load32(std::uint32_t addr) const;
  std::optional<std::uint16_t> load16(std::uint32_t addr) const;
  std::optional<std::uint8_t> load8(std::uint32_t addr) const;
  MemFault store32(std::uint32_t addr, std::uint32_t value);
  MemFault store16(std::uint32_t addr, std::uint16_t value);
  MemFault store8(std::uint32_t addr, std::uint8_t value);

  /// Classify why a load failed (for trap reporting).
  MemFault load_fault(std::uint32_t addr, unsigned size) const;

  /// Bulk copy used by the loader and packet I/O (throws on overflow).
  void write_block(std::uint32_t addr, std::span<const std::uint8_t> data);
  util::Bytes read_block(std::uint32_t addr, std::size_t len) const;

 private:
  struct Region {
    std::uint32_t base;
    std::vector<std::uint8_t> bytes;
    bool contains(std::uint32_t addr, unsigned size) const {
      return addr >= base && addr + size <= base + bytes.size() &&
             addr + size > addr;
    }
  };

  const Region* find(std::uint32_t addr, unsigned size) const;
  Region* find(std::uint32_t addr, unsigned size);

  std::vector<Region> regions_;
};

}  // namespace sdmmon::np

#endif  // SDMMON_NP_MEMORY_HPP
