#include "np/core.hpp"

#include "isa/isa.hpp"

namespace sdmmon::np {

using isa::Instr;
using isa::Op;

const char* trap_name(Trap trap) {
  switch (trap) {
    case Trap::None: return "none";
    case Trap::FetchFault: return "fetch-fault";
    case Trap::DecodeFault: return "decode-fault";
    case Trap::MemFault: return "mem-fault";
    case Trap::Overflow: return "overflow";
    case Trap::Syscall: return "syscall";
    case Trap::Break: return "break";
    case Trap::Watchdog: return "watchdog";
  }
  return "?";
}

Core::Core() = default;

void Core::load_program(const isa::Program& program) {
  program_ = program;
  program_loaded_ = true;
  compiled_ = nullptr;
  reset();
}

void Core::load_program(const isa::Program& program,
                        std::shared_ptr<const CompiledProgram> compiled) {
  if (compiled != nullptr &&
      (compiled->text_base() != program.text_base ||
       compiled->num_ops() != program.text.size())) {
    throw std::invalid_argument(
        "CompiledProgram does not match the program being loaded");
  }
  program_ = program;
  program_loaded_ = true;
  compiled_ = std::move(compiled);
  reset();
}

void Core::update_predecode_live() {
  if (compiled_ != nullptr) {
    pre_base_ = compiled_->text_base();
    pre_text_bytes_ = compiled_->text_bytes();
    pre_ops_ = (predecode_enabled_ && !text_dirty_) ? compiled_->ops_data()
                                                    : nullptr;
  } else {
    pre_ops_ = nullptr;
    pre_base_ = 0;
    pre_text_bytes_ = 0;
  }
}

void Core::reset() {
  mem_.clear();
  if (program_loaded_) {
    // Re-image text and data so attack side effects cannot persist.
    util::Bytes text_bytes(program_.text.size() * 4);
    for (std::size_t i = 0; i < program_.text.size(); ++i) {
      util::store_le32(program_.text[i], text_bytes.data() + 4 * i);
    }
    mem_.write_block(program_.text_base, text_bytes);
    if (!program_.data.empty()) {
      mem_.write_block(program_.data_base, program_.data);
    }
  }
  // Text just got re-imaged from the installed program: the predecoded
  // artifact matches memory again. (soft_reset() deliberately does NOT
  // clear the dirty flag -- it never restores text.)
  text_dirty_ = false;
  update_predecode_live();
  reset_architectural_state();
}

void Core::soft_reset() {
  // Fresh processing stack and packet buffers; application data persists.
  mem_.write_block(kStackBase, util::Bytes(kStackSize, 0));
  mem_.write_block(kPktInBase, util::Bytes(kPktInSize, 0));
  mem_.write_block(kPktOutBase, util::Bytes(kPktOutSize, 0));
  reset_architectural_state();
}

void Core::reset_architectural_state() {
  regs_.fill(0);
  regs_[29] = kStackTop;          // $sp
  regs_[31] = kReturnSentinel;    // $ra -> normal-return sentinel
  pc_ = program_.entry;
  hi_ = lo_ = 0;
  packet_cycles_ = 0;
  pkt_in_len_ = 0;
  output_.clear();
  has_output_ = false;
  out_port_ = 0;
  runnable_ = program_loaded_;
}

void Core::deliver_packet(std::span<const std::uint8_t> packet) {
  const std::size_t n = std::min<std::size_t>(packet.size(), kPktInSize);
  mem_.write_block(kPktInBase, packet.subspan(0, n));
  pkt_in_len_ = static_cast<std::uint32_t>(n);
}

StepInfo Core::finish(StepInfo info, StepEvent event, Trap trap) {
  info.event = event;
  info.trap = trap;
  if (event != StepEvent::Executed) runnable_ = false;
  return info;
}

bool Core::mmio_load(std::uint32_t addr, std::uint32_t& value) const {
  switch (addr) {
    case kRegPktInLen:
      value = pkt_in_len_;
      return true;
    case kRegCycles:
      value = static_cast<std::uint32_t>(cycles_);
      return true;
    default:
      return false;
  }
}

StepInfo Core::mmio_store(StepInfo info, std::uint32_t addr,
                          std::uint32_t value) {
  switch (addr) {
    case kRegPktOutCommit: {
      const std::uint32_t len = std::min(value, kPktOutSize);
      output_ = mem_.read_block(kPktOutBase, len);
      has_output_ = true;
      return finish(info, StepEvent::PacketOut);
    }
    case kRegPktDone:
      return finish(info, StepEvent::PacketDone);
    case kRegHalt:
      return finish(info, StepEvent::Halted);
    case kRegPktOutPort:
      out_port_ = value;  // latched; not a terminal event
      pc_ += 4;           // the store retires normally
      info.event = StepEvent::Executed;
      return info;
    default:
      return finish(info, StepEvent::Trapped, Trap::MemFault);
  }
}

StepInfo Core::step() {
  StepInfo info;
  if (!runnable_) {
    info.event = StepEvent::Trapped;
    info.trap = Trap::FetchFault;
    return info;
  }

  if (packet_cycles_ >= watchdog_budget_) {
    return finish(info, StepEvent::Trapped, Trap::Watchdog);
  }

  info.pc = pc_;
  if (pc_ == kReturnSentinel) {
    // Handler returned normally: packet processed (drop unless committed).
    return finish(info, StepEvent::PacketDone);
  }

  if (pre_ops_ != nullptr) {
    // Fast path: the installed text image is clean, so the fetch is an
    // indexed read of a predecoded op -- no memory-region walk, no
    // decode-table scan. pcs outside the artifact (runtime-materialized
    // code, data-region jumps) fall through to the interpreter below.
    const std::uint32_t off = pc_ - pre_base_;
    if (off < pre_text_bytes_ && (off & 3u) == 0) {
      const CompiledProgram::PreOp& op = pre_ops_[off >> 2];
      info.word = op.word;
      if (!(op.flags & CompiledProgram::kDecoded)) {
        return finish(info, StepEvent::Trapped, Trap::DecodeFault);
      }
      return exec(op.instr, info);
    }
  }

  auto word = mem_.load32(pc_);
  if (!word) {
    return finish(info, StepEvent::Trapped, Trap::FetchFault);
  }
  info.word = *word;

  auto decoded = isa::try_decode(*word);
  if (!decoded) {
    return finish(info, StepEvent::Trapped, Trap::DecodeFault);
  }
  return exec(*decoded, info);
}

StepInfo Core::exec(const Instr& in, StepInfo info) {
  ++cycles_;
  ++packet_cycles_;
  std::uint32_t next_pc = pc_ + 4;

  // Retired-instruction mix for the cycle-cost model. Branches start as
  // not-taken and are reclassified after execution resolves them.
  switch (isa::op_class(in.op)) {
    case isa::OpClass::Alu:
      if (in.op == Op::Mult || in.op == Op::Multu || in.op == Op::Div ||
          in.op == Op::Divu) {
        ++mix_.muldiv;
      } else {
        ++mix_.alu;
      }
      break;
    case isa::OpClass::Load: ++mix_.load; break;
    case isa::OpClass::Store: ++mix_.store; break;
    case isa::OpClass::Branch: ++mix_.branch_not_taken; break;
    case isa::OpClass::Jump:
    case isa::OpClass::JumpLink:
    case isa::OpClass::JumpReg: ++mix_.jump; break;
    case isa::OpClass::Trap: ++mix_.trap; break;
  }

  auto rs = [&] { return regs_[in.rs]; };
  auto rt = [&] { return regs_[in.rt]; };
  auto write_rd = [&](std::uint32_t v) {
    if (in.rd != 0) regs_[in.rd] = v;
  };
  auto write_rt = [&](std::uint32_t v) {
    if (in.rt != 0) regs_[in.rt] = v;
  };
  auto simm = static_cast<std::uint32_t>(in.imm);
  auto zimm = static_cast<std::uint32_t>(in.imm) & 0xFFFFu;

  switch (in.op) {
    case Op::Sll: write_rd(rt() << in.shamt); break;
    case Op::Srl: write_rd(rt() >> in.shamt); break;
    case Op::Sra:
      write_rd(static_cast<std::uint32_t>(
          static_cast<std::int32_t>(rt()) >> in.shamt));
      break;
    case Op::Sllv: write_rd(rt() << (rs() & 31)); break;
    case Op::Srlv: write_rd(rt() >> (rs() & 31)); break;
    case Op::Srav:
      write_rd(static_cast<std::uint32_t>(
          static_cast<std::int32_t>(rt()) >> (rs() & 31)));
      break;

    case Op::Jr: next_pc = rs(); break;
    case Op::Jalr: {
      std::uint32_t target = rs();
      write_rd(pc_ + 4);
      next_pc = target;
      break;
    }

    case Op::Syscall:
      return finish(info, StepEvent::Trapped, Trap::Syscall);
    case Op::Break:
      return finish(info, StepEvent::Trapped, Trap::Break);

    case Op::Mfhi: write_rd(hi_); break;
    case Op::Mflo: write_rd(lo_); break;
    case Op::Mult: {
      std::int64_t prod = static_cast<std::int64_t>(
                              static_cast<std::int32_t>(rs())) *
                          static_cast<std::int32_t>(rt());
      lo_ = static_cast<std::uint32_t>(prod);
      hi_ = static_cast<std::uint32_t>(static_cast<std::uint64_t>(prod) >> 32);
      break;
    }
    case Op::Multu: {
      std::uint64_t prod = static_cast<std::uint64_t>(rs()) * rt();
      lo_ = static_cast<std::uint32_t>(prod);
      hi_ = static_cast<std::uint32_t>(prod >> 32);
      break;
    }
    case Op::Div: {
      std::int32_t a = static_cast<std::int32_t>(rs());
      std::int32_t b = static_cast<std::int32_t>(rt());
      if (b != 0) {
        lo_ = static_cast<std::uint32_t>(a / b);
        hi_ = static_cast<std::uint32_t>(a % b);
      }
      break;
    }
    case Op::Divu:
      if (rt() != 0) {
        lo_ = rs() / rt();
        hi_ = rs() % rt();
      }
      break;

    case Op::Add: {
      std::uint32_t sum = rs() + rt();
      // Signed overflow iff operands share sign and result differs.
      if (~(rs() ^ rt()) & (rs() ^ sum) & 0x8000'0000u) {
        return finish(info, StepEvent::Trapped, Trap::Overflow);
      }
      write_rd(sum);
      break;
    }
    case Op::Addu: write_rd(rs() + rt()); break;
    case Op::Sub: {
      std::uint32_t diff = rs() - rt();
      if ((rs() ^ rt()) & (rs() ^ diff) & 0x8000'0000u) {
        return finish(info, StepEvent::Trapped, Trap::Overflow);
      }
      write_rd(diff);
      break;
    }
    case Op::Subu: write_rd(rs() - rt()); break;
    case Op::And: write_rd(rs() & rt()); break;
    case Op::Or: write_rd(rs() | rt()); break;
    case Op::Xor: write_rd(rs() ^ rt()); break;
    case Op::Nor: write_rd(~(rs() | rt())); break;
    case Op::Slt:
      write_rd(static_cast<std::int32_t>(rs()) < static_cast<std::int32_t>(rt())
                   ? 1
                   : 0);
      break;
    case Op::Sltu: write_rd(rs() < rt() ? 1 : 0); break;

    case Op::Beq:
      if (rs() == rt()) next_pc = pc_ + 4 + simm * 4;
      break;
    case Op::Bne:
      if (rs() != rt()) next_pc = pc_ + 4 + simm * 4;
      break;
    case Op::Blez:
      if (static_cast<std::int32_t>(rs()) <= 0) next_pc = pc_ + 4 + simm * 4;
      break;
    case Op::Bgtz:
      if (static_cast<std::int32_t>(rs()) > 0) next_pc = pc_ + 4 + simm * 4;
      break;

    case Op::Addi: {
      std::uint32_t sum = rs() + simm;
      if (~(rs() ^ simm) & (rs() ^ sum) & 0x8000'0000u) {
        return finish(info, StepEvent::Trapped, Trap::Overflow);
      }
      write_rt(sum);
      break;
    }
    case Op::Addiu: write_rt(rs() + simm); break;
    case Op::Slti:
      write_rt(static_cast<std::int32_t>(rs()) < in.imm ? 1 : 0);
      break;
    case Op::Sltiu: write_rt(rs() < simm ? 1 : 0); break;
    case Op::Andi: write_rt(rs() & zimm); break;
    case Op::Ori: write_rt(rs() | zimm); break;
    case Op::Xori: write_rt(rs() ^ zimm); break;
    case Op::Lui: write_rt(zimm << 16); break;

    case Op::Lb: case Op::Lbu: {
      std::uint32_t addr = rs() + simm;
      std::uint32_t mmio;
      if (mmio_load(addr, mmio)) {
        write_rt(mmio & 0xFF);
        break;
      }
      auto v = mem_.load8(addr);
      if (!v) return finish(info, StepEvent::Trapped, Trap::MemFault);
      write_rt(in.op == Op::Lb
                   ? static_cast<std::uint32_t>(
                         static_cast<std::int32_t>(static_cast<std::int8_t>(*v)))
                   : *v);
      break;
    }
    case Op::Lh: case Op::Lhu: {
      std::uint32_t addr = rs() + simm;
      auto v = mem_.load16(addr);
      if (!v) return finish(info, StepEvent::Trapped, Trap::MemFault);
      write_rt(in.op == Op::Lh
                   ? static_cast<std::uint32_t>(static_cast<std::int32_t>(
                         static_cast<std::int16_t>(*v)))
                   : *v);
      break;
    }
    case Op::Lw: {
      std::uint32_t addr = rs() + simm;
      std::uint32_t mmio;
      if (mmio_load(addr, mmio)) {
        write_rt(mmio);
        break;
      }
      auto v = mem_.load32(addr);
      if (!v) return finish(info, StepEvent::Trapped, Trap::MemFault);
      write_rt(*v);
      break;
    }
    case Op::Sb: {
      std::uint32_t addr = rs() + simm;
      if (addr >= kMmioBase) return mmio_store(info, addr & ~3u, rt());
      if (mem_.store8(addr, static_cast<std::uint8_t>(rt())) !=
          MemFault::None) {
        return finish(info, StepEvent::Trapped, Trap::MemFault);
      }
      note_store(addr);
      break;
    }
    case Op::Sh: {
      std::uint32_t addr = rs() + simm;
      if (addr >= kMmioBase) return mmio_store(info, addr & ~3u, rt());
      if (mem_.store16(addr, static_cast<std::uint16_t>(rt())) !=
          MemFault::None) {
        return finish(info, StepEvent::Trapped, Trap::MemFault);
      }
      note_store(addr);
      break;
    }
    case Op::Sw: {
      std::uint32_t addr = rs() + simm;
      if (addr >= kMmioBase) return mmio_store(info, addr, rt());
      if (mem_.store32(addr, rt()) != MemFault::None) {
        return finish(info, StepEvent::Trapped, Trap::MemFault);
      }
      note_store(addr);
      break;
    }

    case Op::J:
      next_pc = in.target * 4;
      break;
    case Op::Jal:
      regs_[31] = pc_ + 4;
      next_pc = in.target * 4;
      break;
  }

  if (isa::op_class(in.op) == isa::OpClass::Branch && next_pc != info.pc + 4) {
    --mix_.branch_not_taken;
    ++mix_.branch_taken;
  }

  pc_ = next_pc;
  info.event = StepEvent::Executed;
  return info;
}

StepInfo Core::run(std::uint64_t max_steps) {
  StepInfo last;
  std::uint64_t steps = 0;
  while (steps < max_steps) {
    // Dispatch: one full step() resolves every edge case (not runnable,
    // watchdog, sentinel return, fetch outside the artifact, dirty text).
    // When the predecoded fast path is live and the dispatched op did not
    // end its basic block, the tight loop below executes the rest of the
    // straight-line block without re-entering any of those checks: a
    // non-block-end op is by construction a falling-through, in-range,
    // decodable op, so only the watchdog and the self-modifying-store
    // flag need re-testing per op.
    const CompiledProgram::PreOp* ops = pre_ops_;
    std::uint32_t off = pc_ - pre_base_;
    const bool superblock =
        ops != nullptr && runnable_ && pc_ != kReturnSentinel &&
        off < pre_text_bytes_ && (off & 3u) == 0;
    last = step();
    ++steps;
    if (last.event != StepEvent::Executed) return last;
    if (!superblock) continue;
    while (steps < max_steps &&
           (ops[off >> 2].flags & CompiledProgram::kBlockEnd) == 0 &&
           !text_dirty_ && packet_cycles_ < watchdog_budget_) {
      off += 4;  // non-block-end ops always fall through
      const CompiledProgram::PreOp& op = ops[off >> 2];
      StepInfo info;
      info.pc = pc_;
      info.word = op.word;
      if ((op.flags & CompiledProgram::kDecoded) == 0) {
        // Fell through into an undecodable word (it ends its own block
        // but can still be entered): trap exactly as step() would.
        return finish(info, StepEvent::Trapped, Trap::DecodeFault);
      }
      last = exec(op.instr, info);
      ++steps;
      if (last.event != StepEvent::Executed) return last;
    }
  }
  return last;
}

}  // namespace sdmmon::np
