#include "np/core.hpp"

#include "isa/isa.hpp"

namespace sdmmon::np {

using isa::Instr;
using isa::Op;

const char* trap_name(Trap trap) {
  switch (trap) {
    case Trap::None: return "none";
    case Trap::FetchFault: return "fetch-fault";
    case Trap::DecodeFault: return "decode-fault";
    case Trap::MemFault: return "mem-fault";
    case Trap::Overflow: return "overflow";
    case Trap::Syscall: return "syscall";
    case Trap::Break: return "break";
    case Trap::Watchdog: return "watchdog";
  }
  return "?";
}

Core::Core() = default;

void Core::load_program(const isa::Program& program) {
  program_ = program;
  program_loaded_ = true;
  compiled_ = nullptr;
  reset();
}

void Core::load_program(const isa::Program& program,
                        std::shared_ptr<const CompiledProgram> compiled) {
  if (compiled != nullptr &&
      (compiled->text_base() != program.text_base ||
       compiled->num_ops() != program.text.size())) {
    throw std::invalid_argument(
        "CompiledProgram does not match the program being loaded");
  }
  program_ = program;
  program_loaded_ = true;
  compiled_ = std::move(compiled);
  reset();
}

void Core::update_predecode_live() {
  if (compiled_ != nullptr) {
    pre_base_ = compiled_->text_base();
    pre_text_bytes_ = compiled_->text_bytes();
    pre_ops_ = (predecode_enabled_ && !text_dirty_) ? compiled_->ops_data()
                                                    : nullptr;
  } else {
    pre_ops_ = nullptr;
    pre_base_ = 0;
    pre_text_bytes_ = 0;
  }
  pre_run_ = (pre_ops_ != nullptr && fuse_enabled_)
                 ? compiled_->fused_run_data()
                 : nullptr;
  if (pre_run_ != nullptr && trace_enabled_) {
    pre_trace_len_ = compiled_->trace_len_data();
    pre_trace_off_ = compiled_->trace_off_data();
    pre_trace_ops_ = compiled_->trace_ops_data();
  } else {
    pre_trace_len_ = nullptr;
    pre_trace_off_ = nullptr;
    pre_trace_ops_ = nullptr;
  }
}

void Core::reset() {
  mem_.clear();
  if (program_loaded_) {
    // Re-image text and data so attack side effects cannot persist.
    util::Bytes text_bytes(program_.text.size() * 4);
    for (std::size_t i = 0; i < program_.text.size(); ++i) {
      util::store_le32(program_.text[i], text_bytes.data() + 4 * i);
    }
    mem_.write_block(program_.text_base, text_bytes);
    if (!program_.data.empty()) {
      mem_.write_block(program_.data_base, program_.data);
    }
  }
  // Text just got re-imaged from the installed program: the predecoded
  // artifact matches memory again. (soft_reset() deliberately does NOT
  // clear the dirty flag -- it never restores text.)
  text_dirty_ = false;
  update_predecode_live();
  reset_architectural_state();
}

void Core::soft_reset() {
  // Fresh processing stack and packet buffers; application data persists.
  // zero_region only scrubs pages actually written since their last
  // zeroing, so this costs O(bytes the last packet touched).
  mem_.zero_region(kStackBase);
  mem_.zero_region(kPktInBase);
  mem_.zero_region(kPktOutBase);
  reset_architectural_state();
}

void Core::reset_architectural_state() {
  regs_.fill(0);
  regs_[29] = kStackTop;          // $sp
  regs_[31] = kReturnSentinel;    // $ra -> normal-return sentinel
  pc_ = program_.entry;
  hi_ = lo_ = 0;
  packet_cycles_ = 0;
  pkt_in_len_ = 0;
  output_.clear();
  has_output_ = false;
  out_port_ = 0;
  runnable_ = program_loaded_;
}

void Core::deliver_packet(std::span<const std::uint8_t> packet) {
  const std::size_t n = std::min<std::size_t>(packet.size(), kPktInSize);
  mem_.write_block(kPktInBase, packet.subspan(0, n));
  pkt_in_len_ = static_cast<std::uint32_t>(n);
}

StepInfo Core::finish(StepInfo info, StepEvent event, Trap trap) {
  info.event = event;
  info.trap = trap;
  if (event != StepEvent::Executed) runnable_ = false;
  return info;
}

bool Core::mmio_load(std::uint32_t addr, std::uint32_t& value) const {
  switch (addr) {
    case kRegPktInLen:
      value = pkt_in_len_;
      return true;
    case kRegCycles:
      value = static_cast<std::uint32_t>(cycles_);
      return true;
    default:
      return false;
  }
}

StepInfo Core::mmio_store(StepInfo info, std::uint32_t addr,
                          std::uint32_t value) {
  switch (addr) {
    case kRegPktOutCommit: {
      const std::uint32_t len = std::min(value, kPktOutSize);
      output_ = mem_.read_block(kPktOutBase, len);
      has_output_ = true;
      return finish(info, StepEvent::PacketOut);
    }
    case kRegPktDone:
      return finish(info, StepEvent::PacketDone);
    case kRegHalt:
      return finish(info, StepEvent::Halted);
    case kRegPktOutPort:
      out_port_ = value;  // latched; not a terminal event
      pc_ += 4;           // the store retires normally
      info.event = StepEvent::Executed;
      return info;
    default:
      return finish(info, StepEvent::Trapped, Trap::MemFault);
  }
}

StepInfo Core::step() {
  StepInfo info;
  if (!runnable_) {
    info.event = StepEvent::Trapped;
    info.trap = Trap::FetchFault;
    return info;
  }

  if (packet_cycles_ >= watchdog_budget_) {
    return finish(info, StepEvent::Trapped, Trap::Watchdog);
  }

  info.pc = pc_;
  if (pc_ == kReturnSentinel) {
    // Handler returned normally: packet processed (drop unless committed).
    return finish(info, StepEvent::PacketDone);
  }

  if (pre_ops_ != nullptr) {
    // Fast path: the installed text image is clean, so the fetch is an
    // indexed read of a predecoded op -- no memory-region walk, no
    // decode-table scan. pcs outside the artifact (runtime-materialized
    // code, data-region jumps) fall through to the interpreter below.
    const std::uint32_t off = pc_ - pre_base_;
    if (off < pre_text_bytes_ && (off & 3u) == 0) {
      const CompiledProgram::PreOp& op = pre_ops_[off >> 2];
      info.word = op.word;
      if (!(op.flags & CompiledProgram::kDecoded)) {
        return finish(info, StepEvent::Trapped, Trap::DecodeFault);
      }
      return exec(op.instr, info);
    }
  }

  auto word = mem_.load32(pc_);
  if (!word) {
    return finish(info, StepEvent::Trapped, Trap::FetchFault);
  }
  info.word = *word;

  auto decoded = isa::try_decode(*word);
  if (!decoded) {
    return finish(info, StepEvent::Trapped, Trap::DecodeFault);
  }
  return exec(*decoded, info);
}

StepInfo Core::exec(const Instr& in, StepInfo info) {
  ++cycles_;
  ++packet_cycles_;
  std::uint32_t next_pc = pc_ + 4;

  // Retired-instruction mix for the cycle-cost model. Branches start as
  // not-taken and are reclassified after execution resolves them.
  switch (isa::op_class(in.op)) {
    case isa::OpClass::Alu:
      if (in.op == Op::Mult || in.op == Op::Multu || in.op == Op::Div ||
          in.op == Op::Divu) {
        ++mix_.muldiv;
      } else {
        ++mix_.alu;
      }
      break;
    case isa::OpClass::Load: ++mix_.load; break;
    case isa::OpClass::Store: ++mix_.store; break;
    case isa::OpClass::Branch: ++mix_.branch_not_taken; break;
    case isa::OpClass::Jump:
    case isa::OpClass::JumpLink:
    case isa::OpClass::JumpReg: ++mix_.jump; break;
    case isa::OpClass::Trap: ++mix_.trap; break;
  }

  auto rs = [&] { return regs_[in.rs]; };
  auto rt = [&] { return regs_[in.rt]; };
  auto write_rd = [&](std::uint32_t v) {
    if (in.rd != 0) regs_[in.rd] = v;
  };
  auto write_rt = [&](std::uint32_t v) {
    if (in.rt != 0) regs_[in.rt] = v;
  };
  auto simm = static_cast<std::uint32_t>(in.imm);
  auto zimm = static_cast<std::uint32_t>(in.imm) & 0xFFFFu;

  switch (in.op) {
    case Op::Sll: write_rd(rt() << in.shamt); break;
    case Op::Srl: write_rd(rt() >> in.shamt); break;
    case Op::Sra:
      write_rd(static_cast<std::uint32_t>(
          static_cast<std::int32_t>(rt()) >> in.shamt));
      break;
    case Op::Sllv: write_rd(rt() << (rs() & 31)); break;
    case Op::Srlv: write_rd(rt() >> (rs() & 31)); break;
    case Op::Srav:
      write_rd(static_cast<std::uint32_t>(
          static_cast<std::int32_t>(rt()) >> (rs() & 31)));
      break;

    case Op::Jr: next_pc = rs(); break;
    case Op::Jalr: {
      std::uint32_t target = rs();
      write_rd(pc_ + 4);
      next_pc = target;
      break;
    }

    case Op::Syscall:
      return finish(info, StepEvent::Trapped, Trap::Syscall);
    case Op::Break:
      return finish(info, StepEvent::Trapped, Trap::Break);

    case Op::Mfhi: write_rd(hi_); break;
    case Op::Mflo: write_rd(lo_); break;
    case Op::Mult: {
      std::int64_t prod = static_cast<std::int64_t>(
                              static_cast<std::int32_t>(rs())) *
                          static_cast<std::int32_t>(rt());
      lo_ = static_cast<std::uint32_t>(prod);
      hi_ = static_cast<std::uint32_t>(static_cast<std::uint64_t>(prod) >> 32);
      break;
    }
    case Op::Multu: {
      std::uint64_t prod = static_cast<std::uint64_t>(rs()) * rt();
      lo_ = static_cast<std::uint32_t>(prod);
      hi_ = static_cast<std::uint32_t>(prod >> 32);
      break;
    }
    case Op::Div: {
      std::int32_t a = static_cast<std::int32_t>(rs());
      std::int32_t b = static_cast<std::int32_t>(rt());
      if (b != 0) {
        lo_ = static_cast<std::uint32_t>(a / b);
        hi_ = static_cast<std::uint32_t>(a % b);
      }
      break;
    }
    case Op::Divu:
      if (rt() != 0) {
        lo_ = rs() / rt();
        hi_ = rs() % rt();
      }
      break;

    case Op::Add: {
      std::uint32_t sum = rs() + rt();
      // Signed overflow iff operands share sign and result differs.
      if (~(rs() ^ rt()) & (rs() ^ sum) & 0x8000'0000u) {
        return finish(info, StepEvent::Trapped, Trap::Overflow);
      }
      write_rd(sum);
      break;
    }
    case Op::Addu: write_rd(rs() + rt()); break;
    case Op::Sub: {
      std::uint32_t diff = rs() - rt();
      if ((rs() ^ rt()) & (rs() ^ diff) & 0x8000'0000u) {
        return finish(info, StepEvent::Trapped, Trap::Overflow);
      }
      write_rd(diff);
      break;
    }
    case Op::Subu: write_rd(rs() - rt()); break;
    case Op::And: write_rd(rs() & rt()); break;
    case Op::Or: write_rd(rs() | rt()); break;
    case Op::Xor: write_rd(rs() ^ rt()); break;
    case Op::Nor: write_rd(~(rs() | rt())); break;
    case Op::Slt:
      write_rd(static_cast<std::int32_t>(rs()) < static_cast<std::int32_t>(rt())
                   ? 1
                   : 0);
      break;
    case Op::Sltu: write_rd(rs() < rt() ? 1 : 0); break;

    case Op::Beq:
      if (rs() == rt()) next_pc = pc_ + 4 + simm * 4;
      break;
    case Op::Bne:
      if (rs() != rt()) next_pc = pc_ + 4 + simm * 4;
      break;
    case Op::Blez:
      if (static_cast<std::int32_t>(rs()) <= 0) next_pc = pc_ + 4 + simm * 4;
      break;
    case Op::Bgtz:
      if (static_cast<std::int32_t>(rs()) > 0) next_pc = pc_ + 4 + simm * 4;
      break;

    case Op::Addi: {
      std::uint32_t sum = rs() + simm;
      if (~(rs() ^ simm) & (rs() ^ sum) & 0x8000'0000u) {
        return finish(info, StepEvent::Trapped, Trap::Overflow);
      }
      write_rt(sum);
      break;
    }
    case Op::Addiu: write_rt(rs() + simm); break;
    case Op::Slti:
      write_rt(static_cast<std::int32_t>(rs()) < in.imm ? 1 : 0);
      break;
    case Op::Sltiu: write_rt(rs() < simm ? 1 : 0); break;
    case Op::Andi: write_rt(rs() & zimm); break;
    case Op::Ori: write_rt(rs() | zimm); break;
    case Op::Xori: write_rt(rs() ^ zimm); break;
    case Op::Lui: write_rt(zimm << 16); break;

    case Op::Lb: case Op::Lbu: {
      std::uint32_t addr = rs() + simm;
      std::uint32_t mmio;
      if (mmio_load(addr, mmio)) {
        write_rt(mmio & 0xFF);
        break;
      }
      auto v = mem_.load8(addr);
      if (!v) return finish(info, StepEvent::Trapped, Trap::MemFault);
      write_rt(in.op == Op::Lb
                   ? static_cast<std::uint32_t>(
                         static_cast<std::int32_t>(static_cast<std::int8_t>(*v)))
                   : *v);
      break;
    }
    case Op::Lh: case Op::Lhu: {
      std::uint32_t addr = rs() + simm;
      auto v = mem_.load16(addr);
      if (!v) return finish(info, StepEvent::Trapped, Trap::MemFault);
      write_rt(in.op == Op::Lh
                   ? static_cast<std::uint32_t>(static_cast<std::int32_t>(
                         static_cast<std::int16_t>(*v)))
                   : *v);
      break;
    }
    case Op::Lw: {
      std::uint32_t addr = rs() + simm;
      std::uint32_t mmio;
      if (mmio_load(addr, mmio)) {
        write_rt(mmio);
        break;
      }
      auto v = mem_.load32(addr);
      if (!v) return finish(info, StepEvent::Trapped, Trap::MemFault);
      write_rt(*v);
      break;
    }
    case Op::Sb: {
      std::uint32_t addr = rs() + simm;
      if (addr >= kMmioBase) return mmio_store(info, addr & ~3u, rt());
      if (mem_.store8(addr, static_cast<std::uint8_t>(rt())) !=
          MemFault::None) {
        return finish(info, StepEvent::Trapped, Trap::MemFault);
      }
      note_store(addr);
      break;
    }
    case Op::Sh: {
      std::uint32_t addr = rs() + simm;
      if (addr >= kMmioBase) return mmio_store(info, addr & ~3u, rt());
      if (mem_.store16(addr, static_cast<std::uint16_t>(rt())) !=
          MemFault::None) {
        return finish(info, StepEvent::Trapped, Trap::MemFault);
      }
      note_store(addr);
      break;
    }
    case Op::Sw: {
      std::uint32_t addr = rs() + simm;
      if (addr >= kMmioBase) return mmio_store(info, addr, rt());
      if (mem_.store32(addr, rt()) != MemFault::None) {
        return finish(info, StepEvent::Trapped, Trap::MemFault);
      }
      note_store(addr);
      break;
    }

    case Op::J:
      next_pc = in.target * 4;
      break;
    case Op::Jal:
      regs_[31] = pc_ + 4;
      next_pc = in.target * 4;
      break;
  }

  if (isa::op_class(in.op) == isa::OpClass::Branch && next_pc != info.pc + 4) {
    --mix_.branch_not_taken;
    ++mix_.branch_taken;
  }

  pc_ = next_pc;
  info.event = StepEvent::Executed;
  return info;
}

std::uint64_t Core::exec_fused_run(std::uint64_t n) {
  // Preconditions (caller holds a length from fused_run_len()): the
  // fused fast path is live, pc is aligned inside the artifact, every
  // one of the n ops is decoded and fusible (block-body: ALU, load,
  // store), and the watchdog budget has at least n cycles of slack.
  // Execute-first batch: each op either retires or stops the batch --
  //   * would-trap (signed overflow, MemFault) and MMIO-range accesses
  //     stop BEFORE the op (it does not retire; pc lands on it and the
  //     caller's per-op path re-derives the authoritative event);
  //   * a store into the predecoded text stops AFTER the op (it
  //     retires; everything later would execute stale predecode).
  // All accounting (mix/cycles/pc, hi/lo) is deferred to the epilogue
  // and covers exactly the retired prefix -- bit-identical to that many
  // step() calls, because step() also counts at entry and a stopped op
  // has not entered yet.
  const CompiledProgram::PreOp* const begin =
      pre_ops_ + ((pc_ - pre_base_) >> 2);
  const CompiledProgram::PreOp* op = begin;
  const CompiledProgram::PreOp* const end = begin + n;
  std::uint32_t* const regs = regs_.data();
  std::uint32_t hi = hi_;
  std::uint32_t lo = lo_;
  std::uint64_t alu = 0;
  std::uint64_t muldiv = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  bool dirtied = false;

#if defined(__GNUC__) || defined(__clang__)
  // Direct-threaded dispatch (labels-as-values): each superop body jumps
  // straight to the next op's body, no per-op loop branch or switch.
  // Non-fusible ops map to &&bad -- unreachable when the precondition
  // holds; hitting it retires only the ops executed so far.
  static const void* const kDispatch[isa::kNumOps] = {
      &&do_sll,  &&do_srl,   &&do_sra,  &&do_sllv,  // Sll Srl Sra Sllv
      &&do_srlv, &&do_srav,  &&bad,     &&bad,      // Srlv Srav Jr Jalr
      &&bad,     &&bad,      &&do_mfhi, &&do_mflo,  // Syscall Break Mfhi Mflo
      &&do_mult, &&do_multu, &&do_div,  &&do_divu,  // Mult Multu Div Divu
      &&do_add,  &&do_addu,  &&do_sub,  &&do_subu,  // Add Addu Sub Subu
      &&do_and,  &&do_or,    &&do_xor,  &&do_nor,   // And Or Xor Nor
      &&do_slt,  &&do_sltu,  &&bad,     &&bad,      // Slt Sltu Beq Bne
      &&bad,     &&bad,      &&do_addi, &&do_addiu, // Blez Bgtz Addi Addiu
      &&do_slti, &&do_sltiu, &&do_andi, &&do_ori,   // Slti Sltiu Andi Ori
      &&do_xori, &&do_lui,   &&do_lb,   &&do_lh,    // Xori Lui Lb Lh
      &&do_lw,   &&do_lbu,   &&do_lhu,  &&do_sb,    // Lw Lbu Lhu Sb
      &&do_sh,   &&do_sw,    &&bad,     &&bad,      // Sh Sw J Jal
  };
  const isa::Instr* in = &op->instr;

#define SDMMON_FUSE_NEXT()                                \
  do {                                                    \
    if (++op == end) goto done;                           \
    in = &op->instr;                                      \
    goto* kDispatch[static_cast<unsigned>(in->op)];       \
  } while (0)

  goto* kDispatch[static_cast<unsigned>(in->op)];

do_sll:
  if (in->rd) regs[in->rd] = regs[in->rt] << in->shamt;
  ++alu;
  SDMMON_FUSE_NEXT();
do_srl:
  if (in->rd) regs[in->rd] = regs[in->rt] >> in->shamt;
  ++alu;
  SDMMON_FUSE_NEXT();
do_sra:
  if (in->rd) {
    regs[in->rd] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(regs[in->rt]) >> in->shamt);
  }
  ++alu;
  SDMMON_FUSE_NEXT();
do_sllv:
  if (in->rd) regs[in->rd] = regs[in->rt] << (regs[in->rs] & 31);
  ++alu;
  SDMMON_FUSE_NEXT();
do_srlv:
  if (in->rd) regs[in->rd] = regs[in->rt] >> (regs[in->rs] & 31);
  ++alu;
  SDMMON_FUSE_NEXT();
do_srav:
  if (in->rd) {
    regs[in->rd] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(regs[in->rt]) >> (regs[in->rs] & 31));
  }
  ++alu;
  SDMMON_FUSE_NEXT();
do_mfhi:
  if (in->rd) regs[in->rd] = hi;
  ++alu;
  SDMMON_FUSE_NEXT();
do_mflo:
  if (in->rd) regs[in->rd] = lo;
  ++alu;
  SDMMON_FUSE_NEXT();
do_mult: {
  const std::int64_t prod =
      static_cast<std::int64_t>(static_cast<std::int32_t>(regs[in->rs])) *
      static_cast<std::int32_t>(regs[in->rt]);
  lo = static_cast<std::uint32_t>(prod);
  hi = static_cast<std::uint32_t>(static_cast<std::uint64_t>(prod) >> 32);
  ++muldiv;
  SDMMON_FUSE_NEXT();
}
do_multu: {
  const std::uint64_t prod =
      static_cast<std::uint64_t>(regs[in->rs]) * regs[in->rt];
  lo = static_cast<std::uint32_t>(prod);
  hi = static_cast<std::uint32_t>(prod >> 32);
  ++muldiv;
  SDMMON_FUSE_NEXT();
}
do_div: {
  const std::int32_t a = static_cast<std::int32_t>(regs[in->rs]);
  const std::int32_t b = static_cast<std::int32_t>(regs[in->rt]);
  if (b != 0) {
    lo = static_cast<std::uint32_t>(a / b);
    hi = static_cast<std::uint32_t>(a % b);
  }
  ++muldiv;
  SDMMON_FUSE_NEXT();
}
do_divu:
  if (regs[in->rt] != 0) {
    lo = regs[in->rs] / regs[in->rt];
    hi = regs[in->rs] % regs[in->rt];
  }
  ++muldiv;
  SDMMON_FUSE_NEXT();
do_addu:
  if (in->rd) regs[in->rd] = regs[in->rs] + regs[in->rt];
  ++alu;
  SDMMON_FUSE_NEXT();
do_subu:
  if (in->rd) regs[in->rd] = regs[in->rs] - regs[in->rt];
  ++alu;
  SDMMON_FUSE_NEXT();
do_and:
  if (in->rd) regs[in->rd] = regs[in->rs] & regs[in->rt];
  ++alu;
  SDMMON_FUSE_NEXT();
do_or:
  if (in->rd) regs[in->rd] = regs[in->rs] | regs[in->rt];
  ++alu;
  SDMMON_FUSE_NEXT();
do_xor:
  if (in->rd) regs[in->rd] = regs[in->rs] ^ regs[in->rt];
  ++alu;
  SDMMON_FUSE_NEXT();
do_nor:
  if (in->rd) regs[in->rd] = ~(regs[in->rs] | regs[in->rt]);
  ++alu;
  SDMMON_FUSE_NEXT();
do_slt:
  if (in->rd) {
    regs[in->rd] = static_cast<std::int32_t>(regs[in->rs]) <
                           static_cast<std::int32_t>(regs[in->rt])
                       ? 1u
                       : 0u;
  }
  ++alu;
  SDMMON_FUSE_NEXT();
do_sltu:
  if (in->rd) regs[in->rd] = regs[in->rs] < regs[in->rt] ? 1u : 0u;
  ++alu;
  SDMMON_FUSE_NEXT();
do_addiu:
  if (in->rt) regs[in->rt] = regs[in->rs] + static_cast<std::uint32_t>(in->imm);
  ++alu;
  SDMMON_FUSE_NEXT();
do_slti:
  if (in->rt) {
    regs[in->rt] = static_cast<std::int32_t>(regs[in->rs]) < in->imm ? 1u : 0u;
  }
  ++alu;
  SDMMON_FUSE_NEXT();
do_sltiu:
  if (in->rt) {
    regs[in->rt] =
        regs[in->rs] < static_cast<std::uint32_t>(in->imm) ? 1u : 0u;
  }
  ++alu;
  SDMMON_FUSE_NEXT();
do_andi:
  if (in->rt) {
    regs[in->rt] = regs[in->rs] & (static_cast<std::uint32_t>(in->imm) & 0xFFFFu);
  }
  ++alu;
  SDMMON_FUSE_NEXT();
do_ori:
  if (in->rt) {
    regs[in->rt] = regs[in->rs] | (static_cast<std::uint32_t>(in->imm) & 0xFFFFu);
  }
  ++alu;
  SDMMON_FUSE_NEXT();
do_xori:
  if (in->rt) {
    regs[in->rt] = regs[in->rs] ^ (static_cast<std::uint32_t>(in->imm) & 0xFFFFu);
  }
  ++alu;
  SDMMON_FUSE_NEXT();
do_lui:
  if (in->rt) {
    regs[in->rt] = (static_cast<std::uint32_t>(in->imm) & 0xFFFFu) << 16;
  }
  ++alu;
  SDMMON_FUSE_NEXT();
do_add: {
  const std::uint32_t a = regs[in->rs];
  const std::uint32_t b = regs[in->rt];
  const std::uint32_t sum = a + b;
  if (~(a ^ b) & (a ^ sum) & 0x8000'0000u) goto done;  // would overflow
  if (in->rd) regs[in->rd] = sum;
  ++alu;
  SDMMON_FUSE_NEXT();
}
do_sub: {
  const std::uint32_t a = regs[in->rs];
  const std::uint32_t b = regs[in->rt];
  const std::uint32_t diff = a - b;
  if ((a ^ b) & (a ^ diff) & 0x8000'0000u) goto done;  // would overflow
  if (in->rd) regs[in->rd] = diff;
  ++alu;
  SDMMON_FUSE_NEXT();
}
do_addi: {
  const std::uint32_t a = regs[in->rs];
  const std::uint32_t simm = static_cast<std::uint32_t>(in->imm);
  const std::uint32_t sum = a + simm;
  if (~(a ^ simm) & (a ^ sum) & 0x8000'0000u) goto done;  // would overflow
  if (in->rt) regs[in->rt] = sum;
  ++alu;
  SDMMON_FUSE_NEXT();
}
do_lb: {
  const std::uint32_t addr =
      regs[in->rs] + static_cast<std::uint32_t>(in->imm);
  if (addr >= kMmioBase) goto done;  // MMIO read: per-op path
  const auto v = mem_.load8(addr);
  if (!v) goto done;  // would MemFault
  if (in->rt) {
    regs[in->rt] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(static_cast<std::int8_t>(*v)));
  }
  ++loads;
  SDMMON_FUSE_NEXT();
}
do_lbu: {
  const std::uint32_t addr =
      regs[in->rs] + static_cast<std::uint32_t>(in->imm);
  if (addr >= kMmioBase) goto done;
  const auto v = mem_.load8(addr);
  if (!v) goto done;
  if (in->rt) regs[in->rt] = *v;
  ++loads;
  SDMMON_FUSE_NEXT();
}
do_lh: {
  const std::uint32_t addr =
      regs[in->rs] + static_cast<std::uint32_t>(in->imm);
  if (addr >= kMmioBase) goto done;
  const auto v = mem_.load16(addr);
  if (!v) goto done;
  if (in->rt) {
    regs[in->rt] = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(static_cast<std::int16_t>(*v)));
  }
  ++loads;
  SDMMON_FUSE_NEXT();
}
do_lhu: {
  const std::uint32_t addr =
      regs[in->rs] + static_cast<std::uint32_t>(in->imm);
  if (addr >= kMmioBase) goto done;
  const auto v = mem_.load16(addr);
  if (!v) goto done;
  if (in->rt) regs[in->rt] = *v;
  ++loads;
  SDMMON_FUSE_NEXT();
}
do_lw: {
  const std::uint32_t addr =
      regs[in->rs] + static_cast<std::uint32_t>(in->imm);
  if (addr >= kMmioBase) goto done;
  const auto v = mem_.load32(addr);
  if (!v) goto done;
  if (in->rt) regs[in->rt] = *v;
  ++loads;
  SDMMON_FUSE_NEXT();
}
do_sb: {
  const std::uint32_t addr =
      regs[in->rs] + static_cast<std::uint32_t>(in->imm);
  if (addr >= kMmioBase) goto done;  // MMIO store: terminal events
  if (mem_.store8(addr, static_cast<std::uint8_t>(regs[in->rt])) !=
      MemFault::None) {
    goto done;
  }
  ++stores;
  if (addr - pre_base_ < pre_text_bytes_) {
    ++op;  // the dirtying store itself retires
    dirtied = true;
    goto done;
  }
  SDMMON_FUSE_NEXT();
}
do_sh: {
  const std::uint32_t addr =
      regs[in->rs] + static_cast<std::uint32_t>(in->imm);
  if (addr >= kMmioBase) goto done;
  if (mem_.store16(addr, static_cast<std::uint16_t>(regs[in->rt])) !=
      MemFault::None) {
    goto done;
  }
  ++stores;
  if (addr - pre_base_ < pre_text_bytes_) {
    ++op;
    dirtied = true;
    goto done;
  }
  SDMMON_FUSE_NEXT();
}
do_sw: {
  const std::uint32_t addr =
      regs[in->rs] + static_cast<std::uint32_t>(in->imm);
  if (addr >= kMmioBase) goto done;
  if (mem_.store32(addr, regs[in->rt]) != MemFault::None) goto done;
  ++stores;
  if (addr - pre_base_ < pre_text_bytes_) {
    ++op;
    dirtied = true;
    goto done;
  }
  SDMMON_FUSE_NEXT();
}
bad:
  goto done;  // precondition violated: retire only what already ran

#undef SDMMON_FUSE_NEXT
done:;

#else   // portable fallback: switch dispatch in a tight loop
  for (; op != end; ++op) {
    const isa::Instr& in = op->instr;
    const std::uint32_t rs = regs[in.rs];
    const std::uint32_t rt = regs[in.rt];
    std::uint32_t value = 0;
    bool write_rd = in.rd != 0;
    switch (in.op) {
      case Op::Sll: value = rt << in.shamt; break;
      case Op::Srl: value = rt >> in.shamt; break;
      case Op::Sra:
        value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(rt) >> in.shamt);
        break;
      case Op::Sllv: value = rt << (rs & 31); break;
      case Op::Srlv: value = rt >> (rs & 31); break;
      case Op::Srav:
        value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(rt) >> (rs & 31));
        break;
      case Op::Mfhi: value = hi; break;
      case Op::Mflo: value = lo; break;
      case Op::Mult: {
        const std::int64_t prod =
            static_cast<std::int64_t>(static_cast<std::int32_t>(rs)) *
            static_cast<std::int32_t>(rt);
        lo = static_cast<std::uint32_t>(prod);
        hi = static_cast<std::uint32_t>(static_cast<std::uint64_t>(prod) >>
                                        32);
        ++muldiv;
        continue;
      }
      case Op::Multu: {
        const std::uint64_t prod = static_cast<std::uint64_t>(rs) * rt;
        lo = static_cast<std::uint32_t>(prod);
        hi = static_cast<std::uint32_t>(prod >> 32);
        ++muldiv;
        continue;
      }
      case Op::Div: {
        const std::int32_t a = static_cast<std::int32_t>(rs);
        const std::int32_t b = static_cast<std::int32_t>(rt);
        if (b != 0) {
          lo = static_cast<std::uint32_t>(a / b);
          hi = static_cast<std::uint32_t>(a % b);
        }
        ++muldiv;
        continue;
      }
      case Op::Divu:
        if (rt != 0) {
          lo = rs / rt;
          hi = rs % rt;
        }
        ++muldiv;
        continue;
      case Op::Addu: value = rs + rt; break;
      case Op::Subu: value = rs - rt; break;
      case Op::And: value = rs & rt; break;
      case Op::Or: value = rs | rt; break;
      case Op::Xor: value = rs ^ rt; break;
      case Op::Nor: value = ~(rs | rt); break;
      case Op::Slt:
        value = static_cast<std::int32_t>(rs) < static_cast<std::int32_t>(rt)
                    ? 1u
                    : 0u;
        break;
      case Op::Sltu: value = rs < rt ? 1u : 0u; break;
      case Op::Addiu:
        value = rs + static_cast<std::uint32_t>(in.imm);
        write_rd = false;
        goto write_i;
      case Op::Slti:
        value = static_cast<std::int32_t>(rs) < in.imm ? 1u : 0u;
        write_rd = false;
        goto write_i;
      case Op::Sltiu:
        value = rs < static_cast<std::uint32_t>(in.imm) ? 1u : 0u;
        write_rd = false;
        goto write_i;
      case Op::Andi:
        value = rs & (static_cast<std::uint32_t>(in.imm) & 0xFFFFu);
        write_rd = false;
        goto write_i;
      case Op::Ori:
        value = rs | (static_cast<std::uint32_t>(in.imm) & 0xFFFFu);
        write_rd = false;
        goto write_i;
      case Op::Xori:
        value = rs ^ (static_cast<std::uint32_t>(in.imm) & 0xFFFFu);
        write_rd = false;
        goto write_i;
      case Op::Lui:
        value = (static_cast<std::uint32_t>(in.imm) & 0xFFFFu) << 16;
        write_rd = false;
        goto write_i;
      case Op::Add: {
        const std::uint32_t sum = rs + rt;
        if (~(rs ^ rt) & (rs ^ sum) & 0x8000'0000u) goto fallback_done;
        value = sum;
        break;
      }
      case Op::Sub: {
        const std::uint32_t diff = rs - rt;
        if ((rs ^ rt) & (rs ^ diff) & 0x8000'0000u) goto fallback_done;
        value = diff;
        break;
      }
      case Op::Addi: {
        const std::uint32_t simm = static_cast<std::uint32_t>(in.imm);
        value = rs + simm;
        if (~(rs ^ simm) & (rs ^ value) & 0x8000'0000u) goto fallback_done;
        write_rd = false;
        goto write_i;
      }
      case Op::Lb: case Op::Lbu: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        if (addr >= kMmioBase) goto fallback_done;
        const auto v = mem_.load8(addr);
        if (!v) goto fallback_done;
        if (in.rt) {
          regs[in.rt] =
              in.op == Op::Lb
                  ? static_cast<std::uint32_t>(static_cast<std::int32_t>(
                        static_cast<std::int8_t>(*v)))
                  : *v;
        }
        ++loads;
        continue;
      }
      case Op::Lh: case Op::Lhu: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        if (addr >= kMmioBase) goto fallback_done;
        const auto v = mem_.load16(addr);
        if (!v) goto fallback_done;
        if (in.rt) {
          regs[in.rt] =
              in.op == Op::Lh
                  ? static_cast<std::uint32_t>(static_cast<std::int32_t>(
                        static_cast<std::int16_t>(*v)))
                  : *v;
        }
        ++loads;
        continue;
      }
      case Op::Lw: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        if (addr >= kMmioBase) goto fallback_done;
        const auto v = mem_.load32(addr);
        if (!v) goto fallback_done;
        if (in.rt) regs[in.rt] = *v;
        ++loads;
        continue;
      }
      case Op::Sb: case Op::Sh: case Op::Sw: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        if (addr >= kMmioBase) goto fallback_done;
        MemFault fault;
        if (in.op == Op::Sb) {
          fault = mem_.store8(addr, static_cast<std::uint8_t>(rt));
        } else if (in.op == Op::Sh) {
          fault = mem_.store16(addr, static_cast<std::uint16_t>(rt));
        } else {
          fault = mem_.store32(addr, rt);
        }
        if (fault != MemFault::None) goto fallback_done;
        ++stores;
        if (addr - pre_base_ < pre_text_bytes_) {
          ++op;  // the dirtying store itself retires
          dirtied = true;
          goto fallback_done;
        }
        continue;
      }
      default:
        goto fallback_done;  // precondition violated
    }
    if (write_rd) regs[in.rd] = value;
    ++alu;
    continue;
  write_i:
    if (in.rt != 0) regs[in.rt] = value;
    ++alu;
  }
fallback_done:;
#endif  // computed goto vs switch

  const std::uint64_t retired = static_cast<std::uint64_t>(op - begin);
  hi_ = hi;
  lo_ = lo;
  mix_.alu += alu;
  mix_.muldiv += muldiv;
  mix_.load += loads;
  mix_.store += stores;
  cycles_ += retired;
  packet_cycles_ += retired;
  pc_ += static_cast<std::uint32_t>(retired * 4);
  if (dirtied) {
    // Deferred note_store(): drop the fast-path pointers only after the
    // batch accounting is settled.
    text_dirty_ = true;
    update_predecode_live();
  }
  return retired;
}

void Core::retract_fused(const CompiledProgram::PreOp* ops, std::uint64_t n) {
  // Inverse of the epilogue above for the last n ops of a fused batch:
  // MonitoredCore calls this right before the recovery reset() when the
  // monitor flagged a hash mid-batch, so the cumulative counters (which
  // survive reset) match a reference core that stopped at the flagged
  // op. Registers, hi/lo, memory, and output need no compensation --
  // reset() re-images all of them.
  for (std::uint64_t i = 0; i < n; ++i) {
    const isa::Op o = ops[i].instr.op;
    switch (isa::op_class(o)) {
      case isa::OpClass::Load: --mix_.load; break;
      case isa::OpClass::Store: --mix_.store; break;
      default:
        if (o == isa::Op::Mult || o == isa::Op::Multu || o == isa::Op::Div ||
            o == isa::Op::Divu) {
          --mix_.muldiv;
        } else {
          --mix_.alu;
        }
        break;
    }
  }
  cycles_ -= n;
  packet_cycles_ -= n;
}

Core::TraceExec Core::exec_trace(std::uint64_t n) {
  // Preconditions (caller holds a length from trace_run_len()): the
  // trace tier is live, a trace is anchored at the current pc, every
  // trace op is decoded, and the watchdog budget has at least n cycles
  // of slack. Body ops follow exec_fused_run's execute-first stop rules
  // exactly (stop before would-trap/MMIO, stop after a text-dirtying
  // store). Control flow resolves architecturally: jal writes $ra, the
  // mix counts taken/not-taken by the *actual* outcome (taken iff the
  // branch left the fall-through path, matching exec()), and a branch
  // that resolves off the trace's predicted path retires and then
  // side-exits -- the unexecuted tail is simply abandoned, pc follows
  // the actual target. All accounting is deferred to the epilogue and
  // covers exactly the retired prefix, bit-identical to that many
  // step() calls.
  const CompiledProgram::TraceOp* const begin =
      pre_trace_ops_ + pre_trace_off_[(pc_ - pre_base_) >> 2];
  const CompiledProgram::TraceOp* op = begin;
  const CompiledProgram::TraceOp* const end = begin + n;
  std::uint32_t* const regs = regs_.data();
  std::uint32_t hi = hi_;
  std::uint32_t lo = lo_;
  std::uint64_t alu = 0;
  std::uint64_t muldiv = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t jumps = 0;
  std::uint64_t btaken = 0;
  std::uint64_t bnot = 0;
  // pc after the most recently retired control-flow op. Body ops retire
  // to op->pc + 4, so the epilogue consults this only when the *last*
  // retired op redirected control flow.
  std::uint32_t ctrl_next = 0;
  bool dirtied = false;
  bool side_exit = false;

  while (op != end) {
    const isa::Instr& in = op->instr;
    const std::uint32_t rs = regs[in.rs];
    const std::uint32_t rt = regs[in.rt];
    std::uint32_t value = 0;
    bool write_rd = in.rd != 0;
    switch (in.op) {
      case Op::Sll: value = rt << in.shamt; break;
      case Op::Srl: value = rt >> in.shamt; break;
      case Op::Sra:
        value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(rt) >> in.shamt);
        break;
      case Op::Sllv: value = rt << (rs & 31); break;
      case Op::Srlv: value = rt >> (rs & 31); break;
      case Op::Srav:
        value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(rt) >> (rs & 31));
        break;
      case Op::Mfhi: value = hi; break;
      case Op::Mflo: value = lo; break;
      case Op::Mult: {
        const std::int64_t prod =
            static_cast<std::int64_t>(static_cast<std::int32_t>(rs)) *
            static_cast<std::int32_t>(rt);
        lo = static_cast<std::uint32_t>(prod);
        hi = static_cast<std::uint32_t>(static_cast<std::uint64_t>(prod) >>
                                        32);
        ++muldiv;
        ++op;
        continue;
      }
      case Op::Multu: {
        const std::uint64_t prod = static_cast<std::uint64_t>(rs) * rt;
        lo = static_cast<std::uint32_t>(prod);
        hi = static_cast<std::uint32_t>(prod >> 32);
        ++muldiv;
        ++op;
        continue;
      }
      case Op::Div: {
        const std::int32_t a = static_cast<std::int32_t>(rs);
        const std::int32_t b = static_cast<std::int32_t>(rt);
        if (b != 0) {
          lo = static_cast<std::uint32_t>(a / b);
          hi = static_cast<std::uint32_t>(a % b);
        }
        ++muldiv;
        ++op;
        continue;
      }
      case Op::Divu:
        if (rt != 0) {
          lo = rs / rt;
          hi = rs % rt;
        }
        ++muldiv;
        ++op;
        continue;
      case Op::Addu: value = rs + rt; break;
      case Op::Subu: value = rs - rt; break;
      case Op::And: value = rs & rt; break;
      case Op::Or: value = rs | rt; break;
      case Op::Xor: value = rs ^ rt; break;
      case Op::Nor: value = ~(rs | rt); break;
      case Op::Slt:
        value = static_cast<std::int32_t>(rs) < static_cast<std::int32_t>(rt)
                    ? 1u
                    : 0u;
        break;
      case Op::Sltu: value = rs < rt ? 1u : 0u; break;
      case Op::Addiu:
        value = rs + static_cast<std::uint32_t>(in.imm);
        write_rd = false;
        goto write_i;
      case Op::Slti:
        value = static_cast<std::int32_t>(rs) < in.imm ? 1u : 0u;
        write_rd = false;
        goto write_i;
      case Op::Sltiu:
        value = rs < static_cast<std::uint32_t>(in.imm) ? 1u : 0u;
        write_rd = false;
        goto write_i;
      case Op::Andi:
        value = rs & (static_cast<std::uint32_t>(in.imm) & 0xFFFFu);
        write_rd = false;
        goto write_i;
      case Op::Ori:
        value = rs | (static_cast<std::uint32_t>(in.imm) & 0xFFFFu);
        write_rd = false;
        goto write_i;
      case Op::Xori:
        value = rs ^ (static_cast<std::uint32_t>(in.imm) & 0xFFFFu);
        write_rd = false;
        goto write_i;
      case Op::Lui:
        value = (static_cast<std::uint32_t>(in.imm) & 0xFFFFu) << 16;
        write_rd = false;
        goto write_i;
      case Op::Add: {
        const std::uint32_t sum = rs + rt;
        if (~(rs ^ rt) & (rs ^ sum) & 0x8000'0000u) goto trace_done;
        value = sum;
        break;
      }
      case Op::Sub: {
        const std::uint32_t diff = rs - rt;
        if ((rs ^ rt) & (rs ^ diff) & 0x8000'0000u) goto trace_done;
        value = diff;
        break;
      }
      case Op::Addi: {
        const std::uint32_t simm = static_cast<std::uint32_t>(in.imm);
        value = rs + simm;
        if (~(rs ^ simm) & (rs ^ value) & 0x8000'0000u) goto trace_done;
        write_rd = false;
        goto write_i;
      }
      case Op::Lb: case Op::Lbu: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        if (addr >= kMmioBase) goto trace_done;
        const auto v = mem_.load8(addr);
        if (!v) goto trace_done;
        if (in.rt) {
          regs[in.rt] =
              in.op == Op::Lb
                  ? static_cast<std::uint32_t>(static_cast<std::int32_t>(
                        static_cast<std::int8_t>(*v)))
                  : *v;
        }
        ++loads;
        ++op;
        continue;
      }
      case Op::Lh: case Op::Lhu: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        if (addr >= kMmioBase) goto trace_done;
        const auto v = mem_.load16(addr);
        if (!v) goto trace_done;
        if (in.rt) {
          regs[in.rt] =
              in.op == Op::Lh
                  ? static_cast<std::uint32_t>(static_cast<std::int32_t>(
                        static_cast<std::int16_t>(*v)))
                  : *v;
        }
        ++loads;
        ++op;
        continue;
      }
      case Op::Lw: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        if (addr >= kMmioBase) goto trace_done;
        const auto v = mem_.load32(addr);
        if (!v) goto trace_done;
        if (in.rt) regs[in.rt] = *v;
        ++loads;
        ++op;
        continue;
      }
      case Op::Sb: case Op::Sh: case Op::Sw: {
        const std::uint32_t addr = rs + static_cast<std::uint32_t>(in.imm);
        if (addr >= kMmioBase) goto trace_done;
        MemFault fault;
        if (in.op == Op::Sb) {
          fault = mem_.store8(addr, static_cast<std::uint8_t>(rt));
        } else if (in.op == Op::Sh) {
          fault = mem_.store16(addr, static_cast<std::uint16_t>(rt));
        } else {
          fault = mem_.store32(addr, rt);
        }
        if (fault != MemFault::None) goto trace_done;
        ++stores;
        ++op;  // the store retires even when it dirties the text
        if (addr - pre_base_ < pre_text_bytes_) {
          dirtied = true;
          goto trace_done;
        }
        continue;
      }
      case Op::Beq: case Op::Bne: case Op::Blez: case Op::Bgtz: {
        bool cond;
        if (in.op == Op::Beq) {
          cond = rs == rt;
        } else if (in.op == Op::Bne) {
          cond = rs != rt;
        } else if (in.op == Op::Blez) {
          cond = static_cast<std::int32_t>(rs) <= 0;
        } else {
          cond = static_cast<std::int32_t>(rs) > 0;
        }
        const std::uint32_t fall = op->pc + 4;
        const std::uint32_t target =
            fall + static_cast<std::uint32_t>(in.imm) * 4;
        const std::uint32_t actual = cond ? target : fall;
        const std::uint32_t predicted =
            (op->flags & CompiledProgram::kTracePredTaken) ? target : fall;
        // exec() counts a branch taken iff it left the fall-through
        // path (a taken branch-to-next still counts not-taken).
        if (actual != fall) {
          ++btaken;
        } else {
          ++bnot;
        }
        ctrl_next = actual;
        ++op;  // the branch itself always retires
        if (actual != predicted) {
          side_exit = true;
          goto trace_done;
        }
        continue;  // next trace op sits at `actual`
      }
      case Op::J:
        ctrl_next = in.target * 4;
        ++jumps;
        ++op;
        continue;
      case Op::Jal:
        regs[31] = op->pc + 4;
        ctrl_next = in.target * 4;
        ++jumps;
        ++op;
        continue;
      default:
        goto trace_done;  // precondition violated: retire what ran
    }
    if (write_rd) regs[in.rd] = value;
    ++alu;
    ++op;
    continue;
  write_i:
    if (in.rt != 0) regs[in.rt] = value;
    ++alu;
    ++op;
  }
trace_done:;

  const std::uint64_t retired = static_cast<std::uint64_t>(op - begin);
  hi_ = hi;
  lo_ = lo;
  mix_.alu += alu;
  mix_.muldiv += muldiv;
  mix_.load += loads;
  mix_.store += stores;
  mix_.jump += jumps;
  mix_.branch_taken += btaken;
  mix_.branch_not_taken += bnot;
  cycles_ += retired;
  packet_cycles_ += retired;
  if (retired > 0) {
    const CompiledProgram::TraceOp& last = begin[retired - 1];
    switch (isa::op_class(last.instr.op)) {
      case isa::OpClass::Branch:
      case isa::OpClass::Jump:
      case isa::OpClass::JumpLink:
        pc_ = ctrl_next;
        break;
      default:
        // Body ops fall through; a stopped-before op always sits at
        // last.pc + 4 (trace pcs are contiguous between control ops).
        pc_ = last.pc + 4;
        break;
    }
  }
  if (dirtied) {
    // Deferred note_store(), as in exec_fused_run.
    text_dirty_ = true;
    update_predecode_live();
  }
  return {retired, side_exit};
}

void Core::retract_trace(const CompiledProgram::TraceOp* ops, std::uint64_t n,
                         bool last_mispredicted) {
  // Trace analog of retract_fused: un-count the last n ops of a
  // just-executed trace dispatch right before the recovery reset().
  // Control-flow attribution: every overshoot branch retired along its
  // predicted path (taken iff its static flag says taken -- a
  // predicted-taken branch is backward, so it always left the
  // fall-through path, and a predicted-not-taken branch that followed
  // prediction never did), EXCEPT a side-exiting branch, which is
  // always the final retired op and resolved the other way.
  for (std::uint64_t i = 0; i < n; ++i) {
    const isa::Op o = ops[i].instr.op;
    switch (isa::op_class(o)) {
      case isa::OpClass::Load: --mix_.load; break;
      case isa::OpClass::Store: --mix_.store; break;
      case isa::OpClass::Branch: {
        bool taken = (ops[i].flags & CompiledProgram::kTracePredTaken) != 0;
        if (i + 1 == n && last_mispredicted) taken = !taken;
        if (taken) {
          --mix_.branch_taken;
        } else {
          --mix_.branch_not_taken;
        }
        break;
      }
      case isa::OpClass::Jump:
      case isa::OpClass::JumpLink:
        --mix_.jump;
        break;
      default:
        if (o == isa::Op::Mult || o == isa::Op::Multu || o == isa::Op::Div ||
            o == isa::Op::Divu) {
          --mix_.muldiv;
        } else {
          --mix_.alu;
        }
        break;
    }
  }
  cycles_ -= n;
  packet_cycles_ -= n;
}

StepInfo Core::run(std::uint64_t max_steps) {
  StepInfo last;
  std::uint64_t steps = 0;
  while (steps < max_steps) {
    // Trace dispatch (tier 4, docs/EXECUTION.md): when a trace is
    // anchored at the current pc, retire the whole superblock -- body
    // ops, predicted branches, unconditional jumps -- in a single
    // exec_trace call. A side exit (branch resolved off the predicted
    // path) is normal-form: the branch retired, pc follows the actual
    // target, and dispatch simply restarts there.
    std::uint64_t tlen = trace_run_len();
    if (tlen > max_steps - steps) tlen = max_steps - steps;
    if (tlen > 0) {
      const std::uint32_t toff = pre_trace_off_[(pc_ - pre_base_) >> 2];
      const TraceExec tr = exec_trace(tlen);
      steps += tr.retired;
      if (tr.retired > 0) {
        // compiled_ tables, not the cached pointers: a text-dirtying
        // store at the end of the dispatch just nulled them.
        const CompiledProgram::TraceOp& lastop =
            compiled_->trace_ops_data()[toff + tr.retired - 1];
        last.pc = lastop.pc;
        last.word = lastop.word;
        last.event = StepEvent::Executed;
        last.trap = Trap::None;
      }
      if (tr.retired == tlen || tr.side_exit) continue;
      // Short dispatch for a non-side-exit reason: the op at pc traps,
      // touches MMIO, or follows a text-dirtying store. Fall through to
      // the fused/per-op dispatchers in this same iteration.
    }
    // Fused dispatch (the block-fused tier, docs/EXECUTION.md): when a
    // fusible run starts at the current pc, retire the whole block body
    // in a single exec_fused_run call. fused_run_len already folds in
    // the batch-level preconditions (runnable, artifact range/alignment,
    // watchdog slack); the executor itself stops early at would-trap
    // ops, MMIO accesses, and text-dirtying stores, reporting the exact
    // retired count.
    std::uint64_t fused = fused_run_len();
    if (fused > max_steps - steps) fused = max_steps - steps;
    if (fused > 0) {
      const std::size_t idx = (pc_ - pre_base_) >> 2;
      const std::uint64_t retired = exec_fused_run(fused);
      steps += retired;
      if (retired > 0) {
        // compiled_->ops_data(), not pre_ops_: a text-dirtying store at
        // the end of the batch just nulled the fast-path pointers.
        last.pc = pc_ - 4;
        last.word = compiled_->ops_data()[idx + retired - 1].word;
        last.event = StepEvent::Executed;
        last.trap = Trap::None;
      }
      if (retired == fused) continue;
      // Short batch: the op at pc needs full per-op dispatch (it traps,
      // touches MMIO, or follows a text-dirtying store). Fall through
      // to step() in this same iteration -- re-dispatching would spin
      // on a zero-progress batch forever.
    }
    // Dispatch: one full step() resolves every edge case (not runnable,
    // watchdog, sentinel return, fetch outside the artifact, dirty text).
    // When the predecoded fast path is live and the dispatched op did not
    // end its basic block, the tight loop below executes the rest of the
    // straight-line block without re-entering any of those checks: a
    // non-block-end op is by construction a falling-through, in-range,
    // decodable op, so only the watchdog and the self-modifying-store
    // flag need re-testing per op.
    const CompiledProgram::PreOp* ops = pre_ops_;
    std::uint32_t off = pc_ - pre_base_;
    const bool superblock =
        ops != nullptr && runnable_ && pc_ != kReturnSentinel &&
        off < pre_text_bytes_ && (off & 3u) == 0;
    last = step();
    ++steps;
    if (last.event != StepEvent::Executed) return last;
    if (!superblock) continue;
    while (steps < max_steps &&
           (ops[off >> 2].flags & CompiledProgram::kBlockEnd) == 0 &&
           !text_dirty_ && packet_cycles_ < watchdog_budget_) {
      off += 4;  // non-block-end ops always fall through
      if (pre_run_ != nullptr && pre_run_[off >> 2] != 0) {
        // A fusible run starts here: bounce to the fused dispatcher
        // above instead of retiring its ops one exec() at a time.
        break;
      }
      const CompiledProgram::PreOp& op = ops[off >> 2];
      StepInfo info;
      info.pc = pc_;
      info.word = op.word;
      if ((op.flags & CompiledProgram::kDecoded) == 0) {
        // Fell through into an undecodable word (it ends its own block
        // but can still be entered): trap exactly as step() would.
        return finish(info, StepEvent::Trapped, Trap::DecodeFault);
      }
      last = exec(op.instr, info);
      ++steps;
      if (last.event != StepEvent::Executed) return last;
    }
  }
  return last;
}

}  // namespace sdmmon::np
