#include "sdmmon/fleet_ops.hpp"

#include <set>

#include "sdmmon/timed_install.hpp"

namespace sdmmon::protocol {

FleetOperator::CampaignResult FleetOperator::deploy(
    const isa::Program& binary, std::uint64_t now,
    const NiosTimingModel& model) {
  CampaignResult result;
  double per_install_s = 0;
  bool measured = false;

  for (NetworkProcessorDevice* device : devices_) {
    WirePackage wire = op_.program_device(binary, device->public_key());
    if (!measured) {
      // Instrument the first install to extrapolate the campaign cost.
      TimedInstallResult timed =
          timed_install(wire, device->private_key_for_instrumentation(),
                        manufacturer_root_, now);
      if (timed.ok) per_install_s = timed.timing(model).total();
      measured = timed.ok;
    }
    if (device->install(wire, now) == InstallStatus::Ok) {
      ++result.succeeded;
    } else {
      ++result.failed;
    }
  }
  result.modeled_seconds_sequential =
      per_install_s * static_cast<double>(devices_.size());
  last_binary_ = binary;
  has_binary_ = true;
  return result;
}

FleetOperator::CampaignResult FleetOperator::rotate_parameters(
    std::uint64_t now, const NiosTimingModel& model) {
  if (!has_binary_) return {};
  return deploy(last_binary_, now, model);
}

bool FleetOperator::parameters_all_distinct() const {
  std::set<std::uint32_t> seen;
  for (const NetworkProcessorDevice* device : devices_) {
    if (!device->has_application()) continue;
    const auto& soc = device->mpsoc();
    if (soc.num_cores() == 0 || !soc.core(0).installed()) continue;
    const auto* merkle = dynamic_cast<const monitor::MerkleTreeHash*>(
        &soc.core(0).monitor().hash());
    if (merkle == nullptr) continue;
    if (!seen.insert(merkle->parameter()).second) return false;
  }
  return true;
}

}  // namespace sdmmon::protocol
