#include "sdmmon/fleet_ops.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "obs/json.hpp"
#include "sdmmon/timed_install.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace sdmmon::protocol {

std::uint64_t device_backoff_key(std::string_view device_name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (char c : device_name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

double retry_backoff_s(const RetryPolicy& policy, std::uint64_t device_key,
                       std::size_t gap) {
  double base = policy.initial_backoff_s;
  for (std::size_t i = 0; i < gap && base < policy.max_backoff_s; ++i) {
    base *= policy.backoff_multiplier;
  }
  base = std::min(base, policy.max_backoff_s);
  if (policy.jitter <= 0) return base;
  // One deterministic draw per (device, gap): reseeding is cheap and
  // keeps the draw independent of any other RNG use on this device.
  util::Rng rng(device_key + 0x9E3779B97F4A7C15ULL * (gap + 1));
  double factor = 1.0 + policy.jitter * (2.0 * rng.uniform() - 1.0);
  return base * factor;
}

const char* device_outcome_name(DeviceOutcome outcome) {
  switch (outcome) {
    case DeviceOutcome::Installed: return "installed";
    case DeviceOutcome::Rejected: return "rejected";
    case DeviceOutcome::ChannelLost: return "channel-lost";
    case DeviceOutcome::BudgetExhausted: return "budget-exhausted";
    case DeviceOutcome::SkippedUnhealthy: return "skipped-unhealthy";
  }
  return "?";
}

std::unique_ptr<FleetObs> FleetObs::create(obs::Registry& registry) {
  auto obs = std::make_unique<FleetObs>();
  obs->registry = &registry;
  obs->journal = &registry.journal();
  obs->attempts = &registry.counter(obs::names::kFleetAttempts);
  obs->retries = &registry.counter(obs::names::kFleetRetries);
  obs->installed = &registry.counter(obs::names::kFleetInstalled);
  obs->rejected = &registry.counter(obs::names::kFleetRejected);
  obs->channel_lost = &registry.counter(obs::names::kFleetChannelLost);
  obs->budget_exhausted =
      &registry.counter(obs::names::kFleetBudgetExhausted);
  obs->skipped_unhealthy =
      &registry.counter(obs::names::kFleetSkippedUnhealthy);
  obs->attempts_per_device = &registry.histogram(
      obs::names::kFleetAttemptsPerDevice, obs::width_buckets());
  // Modeled backoff per device, milliseconds: spans the default schedule
  // (0.5 s first retry) up past the default 30 s budget.
  static constexpr std::uint64_t kBackoffBoundsMs[] = {
      100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000};
  obs->backoff_ms =
      &registry.histogram(obs::names::kFleetBackoffMs, kBackoffBoundsMs);
  return obs;
}

void FleetObs::record_report(const DeviceReport& report,
                             std::uint32_t device_index) {
  attempts->add(report.attempts);
  if (report.attempts > 1) retries->add(report.attempts - 1);
  switch (report.outcome) {
    case DeviceOutcome::Installed: installed->add(1); break;
    case DeviceOutcome::Rejected: rejected->add(1); break;
    case DeviceOutcome::ChannelLost: channel_lost->add(1); break;
    case DeviceOutcome::BudgetExhausted: budget_exhausted->add(1); break;
    case DeviceOutcome::SkippedUnhealthy: skipped_unhealthy->add(1); break;
  }
  if (report.attempts > 0) attempts_per_device->record(report.attempts);
  backoff_ms->record(static_cast<std::uint64_t>(report.backoff_s * 1000.0));
  if (!report.ok()) {
    journal->record({obs::EventKind::CampaignFailure, attempts->value(),
                     obs::kAllCores, device_index,
                     static_cast<std::uint64_t>(report.outcome)});
  }
}

void FleetOperator::enable_obs(obs::Registry& registry) {
#if SDMMON_OBS_ENABLED
  obs_ = FleetObs::create(registry);
#else
  (void)registry;
#endif
}

std::uint32_t FleetOperator::device_index(const std::string& name) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i]->name() == name) return static_cast<std::uint32_t>(i);
  }
  return obs::kAllCores;  // not enrolled (should not happen)
}

const DeviceReport* FleetOperator::CampaignResult::report_for(
    const std::string& device) const {
  for (const DeviceReport& report : reports) {
    if (report.device == device) return &report;
  }
  return nullptr;
}

DeviceReport FleetOperator::deploy_one(NetworkProcessorDevice& device,
                                       const isa::Program& binary,
                                       std::uint64_t now, Channel& channel,
                                       const RetryPolicy& retry,
                                       const DeviceResumeState& carry) {
  DeviceReport report;
  report.device = device.name();
  // A restored campaign resumes the device mid-schedule: attempts and
  // backoff are cumulative across the restart, so the retry budget is
  // honored end to end, not re-granted. A fresh campaign carries zeros.
  report.attempts = carry.attempts;
  report.backoff_s = carry.backoff_s;
  const std::uint64_t key = device_backoff_key(report.device);

  if (report.attempts >= retry.max_attempts) {
    // The snapshot says the schedule was already spent.
    report.outcome = DeviceOutcome::BudgetExhausted;
    return report;
  }

  for (std::size_t attempt = report.attempts; attempt < retry.max_attempts;
       ++attempt) {
    // Each attempt is a freshly sealed package: a new hash parameter and,
    // crucially, a new sequence number -- so a retry after a lost *reply*
    // (the device actually installed) is fresh, not a replay.
    WirePackage wire = op_.program_device(binary, device.public_key());
    ChannelResult sent = channel.send_install(device, wire, now);
    ++report.attempts;

    if (sent.status == ChannelStatus::Delivered) {
      report.saw_reply = true;
      report.last_status = sent.install_status;
      if (sent.install_status == InstallStatus::Ok) {
        report.outcome = DeviceOutcome::Installed;
        return report;
      }
      if (install_status_permanent(sent.install_status)) {
        // Retrying cannot fix bad keys/certs/signatures; fail fast.
        report.outcome = DeviceOutcome::Rejected;
        return report;
      }
    }

    if (attempt + 1 == retry.max_attempts) break;
    double backoff = retry_backoff_s(retry, key, attempt);
    if (report.backoff_s + backoff > retry.backoff_budget_s) {
      report.outcome = DeviceOutcome::BudgetExhausted;
      return report;
    }
    report.backoff_s += backoff;
  }

  report.outcome = report.saw_reply ? DeviceOutcome::Rejected
                                    : DeviceOutcome::ChannelLost;
  return report;
}

FleetOperator::CampaignResult FleetOperator::run_campaign(
    const std::vector<NetworkProcessorDevice*>& targets,
    const isa::Program& binary, std::uint64_t now,
    const NiosTimingModel& model, Channel* channel,
    const RetryPolicy& retry) {
  DirectChannel direct;
  Channel& link = channel != nullptr ? *channel : direct;

  CampaignResult result;
  pending_.clear();
  double per_install_s = 0;
  bool measured = false;

  for (NetworkProcessorDevice* device : targets) {
    if (!measured) {
      // Instrument one representative install to extrapolate the
      // campaign cost (uses a scratch package; the DRBG advances, which
      // is fine -- parameters must be fresh anyway).
      WirePackage probe = op_.program_device(binary, device->public_key());
      TimedInstallResult timed =
          timed_install(probe, device->private_key_for_instrumentation(),
                        manufacturer_root_, now);
      if (timed.ok) per_install_s = timed.timing(model).total();
      measured = timed.ok;
    }
    // A schedule position restored from a snapshot is consumed exactly
    // once; in-process retries keep their historical fresh schedule.
    DeviceResumeState carry;
    if (auto it = carry_.find(device->name()); it != carry_.end()) {
      carry = it->second;
      carry_.erase(it);
    }
    DeviceReport report = deploy_one(*device, binary, now, link, retry,
                                     carry);
#if SDMMON_OBS_ENABLED
    if (obs_) obs_->record_report(report, device_index(report.device));
#endif
    result.modeled_seconds_sequential +=
        per_install_s * static_cast<double>(report.attempts -
                                            carry.attempts) +
        (report.backoff_s - carry.backoff_s);
    if (report.ok()) {
      ++result.succeeded;
      progress_.erase(report.device);
    } else {
      ++result.failed;
      pending_.push_back(device);
      progress_[report.device] =
          DeviceResumeState{report.attempts, report.backoff_s};
      util::log_info("campaign: device ", report.device, " failed (",
                     device_outcome_name(report.outcome), ", last status ",
                     install_status_name(report.last_status), ", ",
                     report.attempts, " attempts)");
    }
    result.reports.push_back(std::move(report));
  }
  return result;
}

FleetOperator::CampaignResult FleetOperator::deploy(
    const isa::Program& binary, std::uint64_t now,
    const NiosTimingModel& model, Channel* channel,
    const RetryPolicy& retry) {
  last_binary_ = binary;
  has_binary_ = true;
  return run_campaign(devices_, binary, now, model, channel, retry);
}

FleetOperator::CampaignResult FleetOperator::resume(
    std::uint64_t now, const NiosTimingModel& model, Channel* channel,
    const RetryPolicy& retry) {
  if (!has_binary_ || pending_.empty()) return {};
  std::vector<NetworkProcessorDevice*> targets = std::move(pending_);
  pending_.clear();
  return run_campaign(targets, last_binary_, now, model, channel, retry);
}

FleetOperator::CampaignResult FleetOperator::rotate_parameters(
    std::uint64_t now, const NiosTimingModel& model, Channel* channel,
    const RetryPolicy& retry) {
  if (!has_binary_) return {};

  std::vector<NetworkProcessorDevice*> healthy;
  std::vector<DeviceReport> skipped;
  for (NetworkProcessorDevice* device : devices_) {
    if (device->install_attempted() && !device->last_install_ok()) {
      DeviceReport report;
      report.device = device->name();
      report.outcome = DeviceOutcome::SkippedUnhealthy;
      report.last_status = device->last_install_status();
#if SDMMON_OBS_ENABLED
      if (obs_) obs_->record_report(report, device_index(report.device));
#endif
      skipped.push_back(std::move(report));
    } else {
      healthy.push_back(device);
    }
  }

  CampaignResult result =
      run_campaign(healthy, last_binary_, now, model, channel, retry);
  result.skipped = skipped.size();
  for (DeviceReport& report : skipped) {
    // Unhealthy devices stay on the pending list so resume() can bring
    // them back once the underlying fault clears.
    auto it = std::find_if(devices_.begin(), devices_.end(),
                           [&](NetworkProcessorDevice* d) {
                             return d->name() == report.device;
                           });
    if (it != devices_.end()) pending_.push_back(*it);
    result.reports.push_back(std::move(report));
  }
  return result;
}

std::string CampaignSnapshot::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value(1);
  w.key("has_binary").value(has_binary);
  if (has_binary) {
    w.key("binary_hex").value(util::to_hex(binary.serialize()));
  }
  w.key("pending").begin_array();
  for (const auto& [name, state] : pending) {
    w.begin_object();
    w.key("device").value(name);
    w.key("attempts").value(static_cast<std::uint64_t>(state.attempts));
    w.key("backoff_s").value(state.backoff_s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

CampaignSnapshot CampaignSnapshot::from_json(std::string_view text) {
  const obs::JsonValue doc = obs::JsonValue::parse(text);
  if (doc.kind() != obs::JsonValue::Kind::Object ||
      !doc.has("schema") || doc.at("schema").as_int() != 1) {
    throw std::runtime_error("campaign snapshot: unknown schema");
  }
  CampaignSnapshot snap;
  snap.has_binary = doc.has("has_binary") && doc.at("has_binary").as_bool();
  if (snap.has_binary) {
    util::Bytes bytes = util::from_hex(doc.at("binary_hex").as_string());
    snap.binary = isa::Program::deserialize(bytes);
  }
  if (doc.has("pending")) {
    for (const obs::JsonValue& item : doc.at("pending").items()) {
      DeviceResumeState state;
      state.attempts =
          static_cast<std::size_t>(item.at("attempts").as_int());
      state.backoff_s = item.at("backoff_s").as_double();
      snap.pending.emplace_back(item.at("device").as_string(), state);
    }
  }
  return snap;
}

CampaignSnapshot FleetOperator::snapshot_campaign() const {
  CampaignSnapshot snap;
  snap.has_binary = has_binary_;
  if (has_binary_) snap.binary = last_binary_;
  for (const NetworkProcessorDevice* device : pending_) {
    DeviceResumeState state;
    if (auto it = progress_.find(device->name()); it != progress_.end()) {
      state = it->second;
    }
    snap.pending.emplace_back(device->name(), state);
  }
  return snap;
}

std::size_t FleetOperator::restore_campaign(const CampaignSnapshot& snap) {
  has_binary_ = snap.has_binary;
  if (snap.has_binary) last_binary_ = snap.binary;
  pending_.clear();
  progress_.clear();
  carry_.clear();
  std::size_t matched = 0;
  for (const auto& [name, state] : snap.pending) {
    auto it = std::find_if(devices_.begin(), devices_.end(),
                           [&name = name](NetworkProcessorDevice* d) {
                             return d->name() == name;
                           });
    if (it == devices_.end()) continue;  // not enrolled here: dropped
    pending_.push_back(*it);
    progress_[name] = state;
    carry_[name] = state;
    ++matched;
  }
  return matched;
}

bool FleetOperator::parameters_all_distinct() const {
  std::set<std::uint32_t> seen;
  for (const NetworkProcessorDevice* device : devices_) {
    if (!device->has_application()) continue;
    const auto& soc = device->mpsoc();
    if (soc.num_cores() == 0 || !soc.core(0).installed()) continue;
    const auto* merkle = dynamic_cast<const monitor::MerkleTreeHash*>(
        &soc.core(0).monitor().hash());
    if (merkle == nullptr) continue;
    if (!seen.insert(merkle->parameter()).second) return false;
  }
  return true;
}

}  // namespace sdmmon::protocol
