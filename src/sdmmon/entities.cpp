#include "sdmmon/entities.hpp"

#include "monitor/analysis.hpp"
#include "util/log.hpp"

namespace sdmmon::protocol {

Manufacturer::Manufacturer(const std::string& name, std::size_t key_bits,
                           crypto::Drbg drbg)
    : name_(name),
      key_bits_(key_bits),
      drbg_(std::move(drbg)),
      keys_(crypto::rsa_generate(key_bits, drbg_)) {}

crypto::Certificate Manufacturer::certify_operator(
    const std::string& operator_name, const crypto::RsaPublicKey& operator_key,
    std::uint64_t valid_from, std::uint64_t valid_to) {
  return crypto::issue_certificate(operator_name,
                                   crypto::CertRole::NetworkOperator,
                                   next_serial_++, valid_from, valid_to,
                                   operator_key, name_, keys_.priv);
}

std::unique_ptr<NetworkProcessorDevice> Manufacturer::provision_device(
    const std::string& device_name, std::size_t num_cores,
    np::RecoveryConfig recovery) {
  crypto::Drbg device_drbg = drbg_.fork("device/" + device_name);
  crypto::RsaKeyPair device_keys = crypto::rsa_generate(key_bits_, device_drbg);
  return std::make_unique<NetworkProcessorDevice>(device_name, device_keys,
                                                  keys_.pub, num_cores,
                                                  recovery);
}

NetworkOperator::NetworkOperator(const std::string& name, std::size_t key_bits,
                                 crypto::Drbg drbg)
    : name_(name),
      drbg_(std::move(drbg)),
      keys_(crypto::rsa_generate(key_bits, drbg_)) {}

WirePackage NetworkOperator::program_device(
    const isa::Program& binary, const crypto::RsaPublicKey& device_pub,
    std::uint32_t pad_bytes) {
  PackagePayload payload;
  payload.binary = binary;
  payload.hash_param = drbg_.next_u32();  // fresh per package (SR2)
  last_hash_param_ = payload.hash_param;
  monitor::MerkleTreeHash hash(payload.hash_param);
  payload.graph = monitor::extract_graph(binary, hash);
  payload.sequence = ++sequence_;
  payload.pad_bytes = pad_bytes;
  return seal_package(payload, keys_.priv, cert_, device_pub, drbg_);
}

util::Bytes NetworkOperator::sign(
    std::span<const std::uint8_t> message) const {
  return crypto::rsa_sign(keys_.priv, message);
}

const char* install_status_name(InstallStatus status) {
  switch (status) {
    case InstallStatus::Ok: return "ok";
    case InstallStatus::BadCertificate: return "bad-certificate";
    case InstallStatus::WrongDevice: return "wrong-device";
    case InstallStatus::CorruptPackage: return "corrupt-package";
    case InstallStatus::BadSignature: return "bad-signature";
    case InstallStatus::ReplayRejected: return "replay-rejected";
    case InstallStatus::GraphMismatch: return "graph-mismatch";
    case InstallStatus::StageFailed: return "stage-failed";
  }
  return "?";
}

bool install_status_permanent(InstallStatus status) {
  switch (status) {
    case InstallStatus::BadCertificate:
    case InstallStatus::WrongDevice:
    case InstallStatus::BadSignature:
    case InstallStatus::GraphMismatch:
      return true;
    case InstallStatus::Ok:
    case InstallStatus::CorruptPackage:  // usually in-flight damage
    case InstallStatus::ReplayRejected:  // stale state; re-seal fixes it
    case InstallStatus::StageFailed:
      return false;
  }
  return false;
}

NetworkProcessorDevice::NetworkProcessorDevice(
    std::string name, crypto::RsaKeyPair device_keys,
    crypto::RsaPublicKey manufacturer_key, std::size_t num_cores,
    np::RecoveryConfig recovery)
    : name_(std::move(name)),
      keys_(std::move(device_keys)),
      manufacturer_key_(std::move(manufacturer_key)),
      soc_(num_cores, np::DispatchPolicy::RoundRobin, recovery) {}

InstallStatus NetworkProcessorDevice::install(const WirePackage& wire,
                                              std::uint64_t now) {
  last_time_ = now;
  InstallStatus status;
  try {
    status = install_impl(wire, now);
  } catch (const std::exception&) {
    // A payload that passed every cryptographic check can still fail to
    // stage (e.g. its binary does not fit the memory map). The MPSoC
    // validates before committing, so the cores still run the previous
    // configuration; restore the device-level bookkeeping to match.
    status = InstallStatus::StageFailed;
    auto it = store_.find(app_name_);
    if (installed_ && it != store_.end()) activate(it->second);
  }
  return record_install(status, now);
}

InstallStatus NetworkProcessorDevice::install_bytes(
    std::span<const std::uint8_t> wire_bytes, std::uint64_t now) {
  WirePackage wire;
  try {
    wire = WirePackage::deserialize(wire_bytes);
  } catch (const std::exception&) {
    last_time_ = now;
    return record_install(InstallStatus::CorruptPackage, now);
  }
  return install(wire, now);
}

InstallStatus NetworkProcessorDevice::record_install(InstallStatus status,
                                                     std::uint64_t now) {
  last_install_status_ = status;
  install_attempted_ = true;
  AuditEvent event;
  event.kind = AuditEvent::Kind::InstallAttempt;
  event.time = now;
  event.status = status;
  event.detail = status == InstallStatus::Ok
                     ? app_name_
                     : std::string(install_status_name(status));
  audit_.push_back(std::move(event));
  return status;
}

InstallStatus NetworkProcessorDevice::install_impl(const WirePackage& wire,
                                                   std::uint64_t now) {
  // Step 1: certificate chain to the manufacturer root of trust.
  crypto::CertStatus cert_status = crypto::verify_certificate(
      wire.operator_cert, manufacturer_key_, now,
      crypto::CertRole::NetworkOperator);
  if (cert_status != crypto::CertStatus::Ok) {
    util::log_info("device ", name_, ": certificate rejected (",
                   crypto::cert_status_name(cert_status), ")");
    return InstallStatus::BadCertificate;
  }

  // Steps 2-4: unwrap K_sym, decrypt, verify operator signature.
  OpenResult opened =
      open_package(wire, keys_.priv, wire.operator_cert.subject_key);
  switch (opened.status) {
    case OpenStatus::Ok:
      break;
    case OpenStatus::WrongDevice:
      return InstallStatus::WrongDevice;
    case OpenStatus::CorruptCiphertext:
    case OpenStatus::Malformed:
      return InstallStatus::CorruptPackage;
    case OpenStatus::BadSignature:
      return InstallStatus::BadSignature;
  }
  PackagePayload& payload = *opened.payload;

  // Step 5: freshness.
  if (payload.sequence <= last_sequence_) {
    return InstallStatus::ReplayRejected;
  }

  monitor::MerkleTreeHash hash(payload.hash_param);
  if (verify_graph_) {
    // The graph must be exactly what offline analysis yields for this
    // binary under this parameter; otherwise an insider could ship a graph
    // that whitelists malicious code for a benign-looking binary.
    monitor::MonitoringGraph expected =
        monitor::extract_graph(payload.binary, hash);
    if (!(expected == payload.graph)) {
      return InstallStatus::GraphMismatch;
    }
  }

  // The wire format carries the graph uncompiled and the text raw (they
  // are what the operator signed); compile the graph and predecode the
  // text exactly once, now that every cryptographic check has passed.
  // The store and all cores share the immutable artifacts.
  np::InstallArtifacts artifacts =
      np::validate_install_config(payload.binary, payload.graph, hash);
  StoredApp app{std::move(payload.binary), std::move(artifacts),
                payload.hash_param};
  activate(app);
  last_sequence_ = payload.sequence;
  store_[app_name_] = std::move(app);
  util::log_info("device ", name_, ": installed '", app_name_, "' (seq ",
                 payload.sequence, ")");
  return InstallStatus::Ok;
}

void NetworkProcessorDevice::activate(const StoredApp& app) {
  soc_.install_all(app.binary, app.artifacts,
                   monitor::MerkleTreeHash(app.hash_param));
  installed_ = true;
  app_name_ = app.binary.name;
}

bool NetworkProcessorDevice::switch_to(const std::string& app_name) {
  auto it = store_.find(app_name);
  if (it == store_.end()) return false;
  activate(it->second);
  audit_.push_back({AuditEvent::Kind::FastSwitch, last_time_,
                    app_name + " (all cores)", InstallStatus::Ok});
  util::log_info("device ", name_, ": fast-switched to '", app_name, "'");
  return true;
}

bool NetworkProcessorDevice::switch_core_to(std::size_t core_index,
                                            const std::string& app_name) {
  auto it = store_.find(app_name);
  if (it == store_.end() || core_index >= soc_.num_cores()) return false;
  const StoredApp& app = it->second;
  soc_.install(core_index, app.binary, app.artifacts,
               std::make_unique<monitor::MerkleTreeHash>(app.hash_param));
  audit_.push_back({AuditEvent::Kind::FastSwitch, last_time_,
                    app_name + " (core " + std::to_string(core_index) + ")",
                    InstallStatus::Ok});
  return true;
}

std::vector<std::string> NetworkProcessorDevice::stored_apps() const {
  std::vector<std::string> names;
  names.reserve(store_.size());
  for (const auto& [name, app] : store_) names.push_back(name);
  return names;
}

std::size_t NetworkProcessorDevice::store_bytes() const {
  std::size_t total = 0;
  for (const auto& [name, app] : store_) {
    total += app.binary.text_bytes() + app.binary.data.size() +
             (app.artifacts.graph->source().size_bits() + 7) / 8 +
             app.artifacts.code->footprint_bytes();
  }
  return total;
}

}  // namespace sdmmon::protocol
