// Embedded control-processor timing model -- the substitution for the
// paper's wall-clock measurements on a 100 MHz Nios II running uClinux +
// OpenSSL (Table 2). We execute the *same algorithms* at the same key
// sizes, count primitive operations (crypto/opcount.hpp), and convert to
// modeled seconds.
//
// Calibration (documented in DESIGN.md section 5):
//  * invoke_overhead_s: each security step in the prototype ran as a
//    separate OpenSSL invocation over uClinux file I/O; a fixed ~3.3 s
//    startup+I/O cost explains why even the cheap public-key steps
//    (certificate check 3.33 s, signature verify 3.92 s) take seconds.
//  * cycles_per_limb_mul: one 64x64->128 multiply-accumulate of our
//    bignum maps to ~4 32x32 multiplies plus carries in OpenSSL's 32-bit
//    BN path, plus loop overhead -- calibrated so the 2048-bit CRT
//    private decrypt of K_sym lands at the paper's 8.74 s.
//  * cycles_per_aes_block / cycles_per_sha_block: software AES/SHA over
//    buffered uClinux file reads; calibrated so a paper-scale (~1 MiB)
//    package decrypt lands at 7.73 s.
//  * download: effective FTP goodput of the prototype's embedded TCP
//    stack (~4.5 Mbit/s) despite the 1 Gbps PHY.
#ifndef SDMMON_SDMMON_TIMING_HPP
#define SDMMON_SDMMON_TIMING_HPP

#include <cstddef>

#include "crypto/opcount.hpp"

namespace sdmmon::protocol {

struct NiosTimingConfig {
  double clock_hz = 100e6;            // Nios II/f on the DE4
  double cycles_per_limb_mul = 346.0;
  double cycles_per_aes_block = 6758.0;
  double cycles_per_sha_block = 3051.0;
  double invoke_overhead_s = 3.30;    // per security step (process + file I/O)
  double download_goodput_bps = 4.5e6;
  double download_rtt_s = 0.05;
  // Fast in-memory application switch (paper Sec 4.2): reload core
  // memories from the on-device store at embedded memory bandwidth.
  double switch_overhead_s = 0.002;   // core quiesce + monitor re-arm
  double memory_bandwidth_bps = 200e6 * 8;
};

/// Converts measured primitive-op counts into modeled Nios II seconds.
class NiosTimingModel {
 public:
  explicit NiosTimingModel(NiosTimingConfig config = {}) : config_(config) {}

  /// Pure compute time for the given op counts (no invocation overhead).
  double compute_seconds(const crypto::OpCounters& ops) const;

  /// One security step: invocation overhead + compute.
  double step_seconds(const crypto::OpCounters& ops) const {
    return config_.invoke_overhead_s + compute_seconds(ops);
  }

  /// FTP download of `bytes` from the operator's server.
  double download_seconds(std::size_t bytes) const;

  /// In-memory switch to an already-installed app of `app_bytes` total
  /// (binary + graph) -- no cryptography involved.
  double switch_seconds(std::size_t app_bytes) const;

  const NiosTimingConfig& config() const { return config_; }

 private:
  NiosTimingConfig config_;
};

/// Table 2 row set: modeled seconds for each security step.
struct InstallTiming {
  double download_s = 0;
  double cert_check_s = 0;
  double rsa_unwrap_s = 0;  // decrypt K_sym with router private key
  double aes_decrypt_s = 0;
  double verify_sig_s = 0;

  double total() const {
    return download_s + cert_check_s + rsa_unwrap_s + aes_decrypt_s +
           verify_sig_s;
  }
  /// Paper also reports total without networking / one-time cert check.
  double total_no_network_no_cert() const {
    return rsa_unwrap_s + aes_decrypt_s + verify_sig_s;
  }
};

}  // namespace sdmmon::protocol

#endif  // SDMMON_SDMMON_TIMING_HPP
