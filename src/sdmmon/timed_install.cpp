#include "sdmmon/timed_install.hpp"

#include <chrono>

#include "crypto/aes.hpp"

namespace sdmmon::protocol {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

InstallTiming TimedInstallResult::timing(const NiosTimingModel& model) const {
  InstallTiming t;
  t.download_s = model.download_seconds(wire_bytes);
  t.cert_check_s = model.step_seconds(cert_ops);
  t.rsa_unwrap_s = model.step_seconds(unwrap_ops);
  t.aes_decrypt_s = model.step_seconds(aes_ops);
  t.verify_sig_s = model.step_seconds(verify_ops);
  return t;
}

TimedInstallResult timed_install(const WirePackage& wire,
                                 const crypto::RsaPrivateKey& device_priv,
                                 const crypto::RsaPublicKey& manufacturer_key,
                                 std::uint64_t now) {
  TimedInstallResult result;
  result.wire_bytes = wire.wire_size();

  // Step: check manufacturer certificate of operator's public key.
  {
    crypto::OpScope scope;
    auto start = Clock::now();
    result.cert_status = crypto::verify_certificate(
        wire.operator_cert, manufacturer_key, now,
        crypto::CertRole::NetworkOperator);
    result.host_cert_s = elapsed_s(start);
    result.cert_ops = scope.delta();
  }
  if (result.cert_status != crypto::CertStatus::Ok) return result;

  // Step: decrypt AES key K_sym using router's private key.
  util::Bytes k_sym;
  {
    crypto::OpScope scope;
    auto start = Clock::now();
    auto unwrapped = crypto::rsa_decrypt(device_priv, wire.wrapped_key);
    result.host_unwrap_s = elapsed_s(start);
    result.unwrap_ops = scope.delta();
    if (!unwrapped) {
      result.open_status = OpenStatus::WrongDevice;
      return result;
    }
    k_sym = std::move(*unwrapped);
  }

  // Step: decrypt package with AES key.
  util::Bytes inner;
  {
    crypto::OpScope scope;
    auto start = Clock::now();
    try {
      inner = crypto::aes_cbc_decrypt(k_sym, wire.iv, wire.ciphertext);
    } catch (const crypto::AesError&) {
      result.host_aes_s = elapsed_s(start);
      result.aes_ops = scope.delta();
      result.open_status = OpenStatus::CorruptCiphertext;
      return result;
    }
    result.host_aes_s = elapsed_s(start);
    result.aes_ops = scope.delta();
  }

  // Step: verify package signature with operator's public key.
  {
    crypto::OpScope scope;
    auto start = Clock::now();
    util::Bytes plain, signature;
    try {
      util::ByteReader r(inner);
      plain = r.blob();
      signature = r.blob();
    } catch (const util::DecodeError&) {
      result.open_status = OpenStatus::CorruptCiphertext;
      return result;
    }
    const bool sig_ok = crypto::rsa_verify(wire.operator_cert.subject_key,
                                           plain, signature);
    result.host_verify_s = elapsed_s(start);
    result.verify_ops = scope.delta();
    if (!sig_ok) {
      result.open_status = OpenStatus::BadSignature;
      return result;
    }
  }

  result.open_status = OpenStatus::Ok;
  result.ok = true;
  return result;
}

}  // namespace sdmmon::protocol
