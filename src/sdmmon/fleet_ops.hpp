// Operator-side fleet management. The paper's homogeneity argument (SR2)
// assumes the operator actually provisions *distinct* hash parameters on
// every router and can re-key the fleet; this module implements that
// operational layer: enrollment, fleet-wide deployment campaigns (one
// sealed package per device, each with a fresh parameter), and scheduled
// parameter rotation that re-seals the current application for every
// enrolled device.
#ifndef SDMMON_SDMMON_FLEET_OPS_HPP
#define SDMMON_SDMMON_FLEET_OPS_HPP

#include <vector>

#include "sdmmon/entities.hpp"
#include "sdmmon/timing.hpp"

namespace sdmmon::protocol {

class FleetOperator {
 public:
  /// `manufacturer_root` is the manufacturer's public key (the operator
  /// knows it -- its own certificate chains to it); used only to
  /// instrument a representative install for campaign-cost estimates.
  FleetOperator(NetworkOperator& op, crypto::RsaPublicKey manufacturer_root)
      : op_(op), manufacturer_root_(std::move(manufacturer_root)) {}

  /// Register a device (non-owning; devices outlive the fleet view).
  void enroll(NetworkProcessorDevice* device) { devices_.push_back(device); }

  std::size_t size() const { return devices_.size(); }

  struct CampaignResult {
    std::size_t succeeded = 0;
    std::size_t failed = 0;
    /// Modeled wall-clock of the campaign on the embedded side if the
    /// installs run sequentially (one instrumented install extrapolated
    /// across the fleet).
    double modeled_seconds_sequential = 0;
  };

  /// Install `binary` on every enrolled device, each with its own fresh
  /// hash parameter (the operator's DRBG advances per package).
  CampaignResult deploy(const isa::Program& binary, std::uint64_t now,
                        const NiosTimingModel& model = NiosTimingModel());

  /// Re-key the fleet: re-seal the most recently deployed binary with new
  /// parameters for every device. Bounds the value of any brute-force
  /// progress an attacker has made against a single router.
  CampaignResult rotate_parameters(std::uint64_t now,
                                   const NiosTimingModel& model =
                                       NiosTimingModel());

  /// True if no two enrolled devices share a monitor hash parameter
  /// (inspects the installed monitors; used by tests and health checks).
  bool parameters_all_distinct() const;

 private:
  NetworkOperator& op_;
  crypto::RsaPublicKey manufacturer_root_;
  std::vector<NetworkProcessorDevice*> devices_;
  isa::Program last_binary_;
  bool has_binary_ = false;
};

}  // namespace sdmmon::protocol

#endif  // SDMMON_SDMMON_FLEET_OPS_HPP
