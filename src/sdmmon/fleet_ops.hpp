// Operator-side fleet management. The paper's homogeneity argument (SR2)
// assumes the operator actually provisions *distinct* hash parameters on
// every router and can re-key the fleet; this module implements that
// operational layer: enrollment, fleet-wide deployment campaigns (one
// sealed package per device, each with a fresh parameter), and scheduled
// parameter rotation that re-seals the current application for every
// enrolled device.
//
// Campaigns run over an injectable Channel and tolerate loss: each device
// gets per-attempt re-sealing (a retry is a *fresh* package, so sequence
// numbers stay monotone even when only the reply was lost), exponential
// backoff under a per-device budget, typed per-device failure reasons,
// and resumability -- resume() retries exactly the devices the previous
// campaign left unconverged.
#ifndef SDMMON_SDMMON_FLEET_OPS_HPP
#define SDMMON_SDMMON_FLEET_OPS_HPP

#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sdmmon/channel.hpp"
#include "sdmmon/entities.hpp"
#include "sdmmon/timing.hpp"

namespace sdmmon::protocol {

/// Retry/backoff schedule for one campaign. Backoff is modeled seconds
/// (the campaign clock), not host wall-clock.
struct RetryPolicy {
  std::size_t max_attempts = 4;
  double initial_backoff_s = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 8.0;
  /// Cumulative backoff budget per device; exceeding it fails the device
  /// with BudgetExhausted rather than retrying forever.
  double backoff_budget_s = 30.0;
};

/// Why a device ended the campaign in the state it did.
enum class DeviceOutcome : std::uint8_t {
  Installed,        // converged
  Rejected,         // device returned a rejection (see last_status)
  ChannelLost,      // every attempt vanished into the channel
  BudgetExhausted,  // retries stopped by the backoff budget
  SkippedUnhealthy, // rotation skipped it: last install had failed
};

const char* device_outcome_name(DeviceOutcome outcome);

/// Per-device campaign record -- the typed failure reason the bare
/// success/failure counters of the original API could not express.
struct DeviceReport {
  std::string device;
  DeviceOutcome outcome = DeviceOutcome::ChannelLost;
  /// Last device-side verdict the operator actually saw (only meaningful
  /// when saw_reply is true).
  InstallStatus last_status = InstallStatus::Ok;
  bool saw_reply = false;
  std::size_t attempts = 0;
  double backoff_s = 0;  // modeled seconds spent waiting between attempts

  bool ok() const { return outcome == DeviceOutcome::Installed; }
};

/// Cached observability handles for fleet campaigns: attempt/retry
/// counters, one counter per DeviceOutcome, and per-device attempt /
/// backoff distributions. Campaign paths are cold (operator actions, not
/// packets), so every report is recorded without sampling.
struct FleetObs {
  obs::Registry* registry = nullptr;
  obs::EventJournal* journal = nullptr;
  obs::Counter* attempts = nullptr;       // install attempts sent
  obs::Counter* retries = nullptr;        // attempts beyond the first
  obs::Counter* installed = nullptr;
  obs::Counter* rejected = nullptr;
  obs::Counter* channel_lost = nullptr;
  obs::Counter* budget_exhausted = nullptr;
  obs::Counter* skipped_unhealthy = nullptr;
  obs::Histogram* attempts_per_device = nullptr;
  obs::Histogram* backoff_ms = nullptr;

  static std::unique_ptr<FleetObs> create(obs::Registry& registry);
  /// Fold one finished per-device report into the metrics; journals a
  /// CampaignFailure event (device = enrollment index, arg = outcome)
  /// when the device did not converge.
  void record_report(const DeviceReport& report, std::uint32_t device_index);
};

class FleetOperator {
 public:
  /// `manufacturer_root` is the manufacturer's public key (the operator
  /// knows it -- its own certificate chains to it); used only to
  /// instrument a representative install for campaign-cost estimates.
  FleetOperator(NetworkOperator& op, crypto::RsaPublicKey manufacturer_root)
      : op_(op), manufacturer_root_(std::move(manufacturer_root)) {}

  /// Register a device (non-owning; devices outlive the fleet view).
  void enroll(NetworkProcessorDevice* device) { devices_.push_back(device); }

  std::size_t size() const { return devices_.size(); }

  struct CampaignResult {
    std::size_t succeeded = 0;
    std::size_t failed = 0;
    std::size_t skipped = 0;  // rotation only: unhealthy devices
    /// Modeled wall-clock of the campaign on the embedded side if the
    /// installs run sequentially (one instrumented install extrapolated
    /// across the fleet, plus all modeled retry backoff).
    double modeled_seconds_sequential = 0;
    std::vector<DeviceReport> reports;

    bool converged() const { return failed == 0; }
    const DeviceReport* report_for(const std::string& device) const;
  };

  /// Install `binary` on every enrolled device, each with its own fresh
  /// hash parameter (the operator's DRBG advances per package). With the
  /// default arguments this is the original reliable single-shot deploy;
  /// pass a channel + retry policy to run over a lossy link.
  CampaignResult deploy(const isa::Program& binary, std::uint64_t now,
                        const NiosTimingModel& model = NiosTimingModel(),
                        Channel* channel = nullptr,
                        const RetryPolicy& retry = RetryPolicy());

  /// Retry only the devices the previous deploy/rotate left unconverged
  /// (using the same binary). A no-op returning an empty result when the
  /// previous campaign converged or nothing was ever deployed.
  CampaignResult resume(std::uint64_t now,
                        const NiosTimingModel& model = NiosTimingModel(),
                        Channel* channel = nullptr,
                        const RetryPolicy& retry = RetryPolicy());

  /// Devices the last campaign failed to converge (targets of resume()).
  std::size_t pending_devices() const { return pending_.size(); }

  /// Re-key the fleet: re-seal the most recently deployed binary with new
  /// parameters for every *healthy* device. Devices whose last install
  /// failed are skipped and reported (SkippedUnhealthy) -- re-sealing for
  /// them would advance sequence numbers on a device in an unknown state;
  /// they stay on resume()'s pending list instead. Bounds the value of
  /// any brute-force progress an attacker has made against one router.
  CampaignResult rotate_parameters(std::uint64_t now,
                                   const NiosTimingModel& model =
                                       NiosTimingModel(),
                                   Channel* channel = nullptr,
                                   const RetryPolicy& retry = RetryPolicy());

  /// True if no two enrolled devices share a monitor hash parameter
  /// (inspects the installed monitors; used by tests and health checks).
  bool parameters_all_distinct() const;

  /// Attach the observability layer: campaign counters/histograms go to
  /// `registry`, failed devices are journaled as CampaignFailure events.
  /// No-op when SDMMON_OBS=OFF.
  void enable_obs(obs::Registry& registry);

 private:
  DeviceReport deploy_one(NetworkProcessorDevice& device,
                          const isa::Program& binary, std::uint64_t now,
                          Channel& channel, const RetryPolicy& retry);
  CampaignResult run_campaign(const std::vector<NetworkProcessorDevice*>& targets,
                              const isa::Program& binary, std::uint64_t now,
                              const NiosTimingModel& model, Channel* channel,
                              const RetryPolicy& retry);

  std::uint32_t device_index(const std::string& name) const;

  NetworkOperator& op_;
  crypto::RsaPublicKey manufacturer_root_;
  std::vector<NetworkProcessorDevice*> devices_;
  std::vector<NetworkProcessorDevice*> pending_;  // unconverged last time
  isa::Program last_binary_;
  bool has_binary_ = false;
  std::unique_ptr<FleetObs> obs_;
};

}  // namespace sdmmon::protocol

#endif  // SDMMON_SDMMON_FLEET_OPS_HPP
