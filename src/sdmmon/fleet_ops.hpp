// Operator-side fleet management. The paper's homogeneity argument (SR2)
// assumes the operator actually provisions *distinct* hash parameters on
// every router and can re-key the fleet; this module implements that
// operational layer: enrollment, fleet-wide deployment campaigns (one
// sealed package per device, each with a fresh parameter), and scheduled
// parameter rotation that re-seals the current application for every
// enrolled device.
//
// Campaigns run over an injectable Channel and tolerate loss: each device
// gets per-attempt re-sealing (a retry is a *fresh* package, so sequence
// numbers stay monotone even when only the reply was lost), exponential
// backoff under a per-device budget, typed per-device failure reasons,
// and resumability -- resume() retries exactly the devices the previous
// campaign left unconverged.
#ifndef SDMMON_SDMMON_FLEET_OPS_HPP
#define SDMMON_SDMMON_FLEET_OPS_HPP

#include <memory>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sdmmon/channel.hpp"
#include "sdmmon/entities.hpp"
#include "sdmmon/timing.hpp"

namespace sdmmon::protocol {

/// Retry/backoff schedule for one campaign. Backoff is modeled seconds
/// (the campaign clock), not host wall-clock.
struct RetryPolicy {
  std::size_t max_attempts = 4;
  double initial_backoff_s = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 8.0;
  /// Cumulative backoff budget per device; exceeding it fails the device
  /// with BudgetExhausted rather than retrying forever.
  double backoff_budget_s = 30.0;
  /// Deterministic per-device jitter: each backoff gap is scaled by a
  /// factor drawn uniformly from [1 - jitter, 1 + jitter], seeded from
  /// the device's key -- so a fleet-wide outage does not resynchronize
  /// every device onto the same retry instants (a retry storm). 0 keeps
  /// the exact geometric schedule.
  double jitter = 0.0;
};

/// Stable 64-bit backoff-jitter key for a device (FNV-1a over the name);
/// two fleets naming devices identically jitter identically on purpose --
/// determinism beats uniqueness here.
std::uint64_t device_backoff_key(std::string_view device_name);

/// The backoff gap between attempt `gap` and attempt `gap + 1` (0-based).
/// Pure in (policy, device_key, gap): with jitter == 0 this is exactly
/// min(initial * multiplier^gap, max); with jitter > 0 the same value
/// scaled by the device's deterministic jitter factor for that gap.
double retry_backoff_s(const RetryPolicy& policy, std::uint64_t device_key,
                       std::size_t gap);

/// Why a device ended the campaign in the state it did.
enum class DeviceOutcome : std::uint8_t {
  Installed,        // converged
  Rejected,         // device returned a rejection (see last_status)
  ChannelLost,      // every attempt vanished into the channel
  BudgetExhausted,  // retries stopped by the backoff budget
  SkippedUnhealthy, // rotation skipped it: last install had failed
};

const char* device_outcome_name(DeviceOutcome outcome);

/// Per-device campaign record -- the typed failure reason the bare
/// success/failure counters of the original API could not express.
struct DeviceReport {
  std::string device;
  DeviceOutcome outcome = DeviceOutcome::ChannelLost;
  /// Last device-side verdict the operator actually saw (only meaningful
  /// when saw_reply is true).
  InstallStatus last_status = InstallStatus::Ok;
  bool saw_reply = false;
  std::size_t attempts = 0;
  double backoff_s = 0;  // modeled seconds spent waiting between attempts

  bool ok() const { return outcome == DeviceOutcome::Installed; }
};

/// Where an unconverged device stands in its retry schedule: attempts
/// already spent and modeled backoff already consumed. Carried across an
/// operator restart so a restored campaign *continues* the schedule
/// (budget arithmetic included) instead of granting every device a fresh
/// retry allowance.
struct DeviceResumeState {
  std::size_t attempts = 0;
  double backoff_s = 0;
};

/// Serializable campaign state: everything an operator console must
/// persist to survive a restart mid-campaign -- the deployed binary, the
/// unconverged device set, and each device's position in its retry
/// schedule. JSON because the operator side already speaks it
/// (snapshot_json, BENCH reports); the binary travels hex-encoded through
/// its existing wire serialization.
struct CampaignSnapshot {
  bool has_binary = false;
  isa::Program binary;
  /// Unconverged devices in campaign order, with their schedule position.
  std::vector<std::pair<std::string, DeviceResumeState>> pending;

  std::string to_json() const;
  /// Throws std::runtime_error / util::DecodeError on malformed input.
  static CampaignSnapshot from_json(std::string_view text);
};

/// Cached observability handles for fleet campaigns: attempt/retry
/// counters, one counter per DeviceOutcome, and per-device attempt /
/// backoff distributions. Campaign paths are cold (operator actions, not
/// packets), so every report is recorded without sampling.
struct FleetObs {
  obs::Registry* registry = nullptr;
  obs::EventJournal* journal = nullptr;
  obs::Counter* attempts = nullptr;       // install attempts sent
  obs::Counter* retries = nullptr;        // attempts beyond the first
  obs::Counter* installed = nullptr;
  obs::Counter* rejected = nullptr;
  obs::Counter* channel_lost = nullptr;
  obs::Counter* budget_exhausted = nullptr;
  obs::Counter* skipped_unhealthy = nullptr;
  obs::Histogram* attempts_per_device = nullptr;
  obs::Histogram* backoff_ms = nullptr;

  static std::unique_ptr<FleetObs> create(obs::Registry& registry);
  /// Fold one finished per-device report into the metrics; journals a
  /// CampaignFailure event (device = enrollment index, arg = outcome)
  /// when the device did not converge.
  void record_report(const DeviceReport& report, std::uint32_t device_index);
};

class FleetOperator {
 public:
  /// `manufacturer_root` is the manufacturer's public key (the operator
  /// knows it -- its own certificate chains to it); used only to
  /// instrument a representative install for campaign-cost estimates.
  FleetOperator(NetworkOperator& op, crypto::RsaPublicKey manufacturer_root)
      : op_(op), manufacturer_root_(std::move(manufacturer_root)) {}

  /// Register a device (non-owning; devices outlive the fleet view).
  void enroll(NetworkProcessorDevice* device) { devices_.push_back(device); }

  std::size_t size() const { return devices_.size(); }

  struct CampaignResult {
    std::size_t succeeded = 0;
    std::size_t failed = 0;
    std::size_t skipped = 0;  // rotation only: unhealthy devices
    /// Modeled wall-clock of the campaign on the embedded side if the
    /// installs run sequentially (one instrumented install extrapolated
    /// across the fleet, plus all modeled retry backoff).
    double modeled_seconds_sequential = 0;
    std::vector<DeviceReport> reports;

    bool converged() const { return failed == 0; }
    const DeviceReport* report_for(const std::string& device) const;
  };

  /// Install `binary` on every enrolled device, each with its own fresh
  /// hash parameter (the operator's DRBG advances per package). With the
  /// default arguments this is the original reliable single-shot deploy;
  /// pass a channel + retry policy to run over a lossy link.
  CampaignResult deploy(const isa::Program& binary, std::uint64_t now,
                        const NiosTimingModel& model = NiosTimingModel(),
                        Channel* channel = nullptr,
                        const RetryPolicy& retry = RetryPolicy());

  /// Retry only the devices the previous deploy/rotate left unconverged
  /// (using the same binary). A no-op returning an empty result when the
  /// previous campaign converged or nothing was ever deployed.
  CampaignResult resume(std::uint64_t now,
                        const NiosTimingModel& model = NiosTimingModel(),
                        Channel* channel = nullptr,
                        const RetryPolicy& retry = RetryPolicy());

  /// Devices the last campaign failed to converge (targets of resume()).
  std::size_t pending_devices() const { return pending_.size(); }

  /// Capture the resumable campaign state (deployed binary, unconverged
  /// set, per-device schedule position). Meaningful after any campaign;
  /// an empty snapshot (has_binary == false) when nothing was deployed.
  CampaignSnapshot snapshot_campaign() const;

  /// Restore a snapshot onto this operator view -- typically a freshly
  /// constructed one after a console restart, with the same devices
  /// enrolled. Pending devices are matched by name (unknown names are
  /// dropped); their schedule positions are consumed by the next
  /// resume(), which therefore *continues* each device's retry budget.
  /// Returns the number of pending devices matched.
  std::size_t restore_campaign(const CampaignSnapshot& snapshot);

  /// Re-key the fleet: re-seal the most recently deployed binary with new
  /// parameters for every *healthy* device. Devices whose last install
  /// failed are skipped and reported (SkippedUnhealthy) -- re-sealing for
  /// them would advance sequence numbers on a device in an unknown state;
  /// they stay on resume()'s pending list instead. Bounds the value of
  /// any brute-force progress an attacker has made against one router.
  CampaignResult rotate_parameters(std::uint64_t now,
                                   const NiosTimingModel& model =
                                       NiosTimingModel(),
                                   Channel* channel = nullptr,
                                   const RetryPolicy& retry = RetryPolicy());

  /// True if no two enrolled devices share a monitor hash parameter
  /// (inspects the installed monitors; used by tests and health checks).
  bool parameters_all_distinct() const;

  /// Attach the observability layer: campaign counters/histograms go to
  /// `registry`, failed devices are journaled as CampaignFailure events.
  /// No-op when SDMMON_OBS=OFF.
  void enable_obs(obs::Registry& registry);

 private:
  DeviceReport deploy_one(NetworkProcessorDevice& device,
                          const isa::Program& binary, std::uint64_t now,
                          Channel& channel, const RetryPolicy& retry,
                          const DeviceResumeState& carry);
  CampaignResult run_campaign(const std::vector<NetworkProcessorDevice*>& targets,
                              const isa::Program& binary, std::uint64_t now,
                              const NiosTimingModel& model, Channel* channel,
                              const RetryPolicy& retry);

  std::uint32_t device_index(const std::string& name) const;

  NetworkOperator& op_;
  crypto::RsaPublicKey manufacturer_root_;
  std::vector<NetworkProcessorDevice*> devices_;
  std::vector<NetworkProcessorDevice*> pending_;  // unconverged last time
  /// Schedule position of each unconverged device (snapshot payload).
  std::map<std::string, DeviceResumeState> progress_;
  /// Restored schedule positions, consumed by the next campaign touching
  /// the device. Only populated by restore_campaign(): an in-process
  /// resume() keeps its historical fresh-schedule semantics.
  std::map<std::string, DeviceResumeState> carry_;
  isa::Program last_binary_;
  bool has_binary_ = false;
  std::unique_ptr<FleetObs> obs_;
};

}  // namespace sdmmon::protocol

#endif  // SDMMON_SDMMON_FLEET_OPS_HPP
