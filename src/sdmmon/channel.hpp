// The operator->device management channel. The paper assumes packages
// simply arrive; a production fleet campaign cannot -- management links
// share fate with the data plane they reprogram. Channel abstracts one
// install exchange (request out, status reply back) so campaigns can run
// over a perfect in-process link (DirectChannel) or a link with injected
// loss, corruption, delay, and clock skew (LossyChannel), with identical
// operator-side code. Both channels transmit the *serialized* wire bytes
// and reparse on the device side, so every campaign exercises the real
// codec path, not in-memory object passing.
#ifndef SDMMON_SDMMON_CHANNEL_HPP
#define SDMMON_SDMMON_CHANNEL_HPP

#include "sdmmon/entities.hpp"
#include "util/fault.hpp"

namespace sdmmon::protocol {

/// What the operator observed for one install exchange.
enum class ChannelStatus : std::uint8_t {
  Delivered,    // request arrived, reply came back: install_status valid
  RequestLost,  // package never reached the device
  ReplyLost,    // device processed the package but the reply vanished --
                // the operator cannot distinguish this from RequestLost
                // and must retry (re-sealing keeps the retry fresh)
};

const char* channel_status_name(ChannelStatus status);

struct ChannelResult {
  ChannelStatus status = ChannelStatus::RequestLost;
  /// Device-side verdict; only meaningful when status == Delivered.
  InstallStatus install_status = InstallStatus::CorruptPackage;
};

class Channel {
 public:
  virtual ~Channel() = default;

  /// Perform one install exchange with `device` at operator time `now`.
  virtual ChannelResult send_install(NetworkProcessorDevice& device,
                                     const WirePackage& wire,
                                     std::uint64_t now) = 0;
};

/// Reliable in-process channel: serialize -> deserialize -> install.
class DirectChannel : public Channel {
 public:
  ChannelResult send_install(NetworkProcessorDevice& device,
                             const WirePackage& wire,
                             std::uint64_t now) override;
};

/// Channel wrapping a FaultInjector: requests can be dropped, bit-flipped,
/// truncated, or delayed, replies can be dropped, and the device-side
/// clock (used for certificate validity) can be skewed. The injector is
/// borrowed, so a test can share one seeded injector across the campaign
/// and inspect its fault statistics afterwards.
class LossyChannel : public Channel {
 public:
  explicit LossyChannel(util::FaultInjector& faults) : faults_(faults) {}

  ChannelResult send_install(NetworkProcessorDevice& device,
                             const WirePackage& wire,
                             std::uint64_t now) override;

 private:
  util::FaultInjector& faults_;
};

}  // namespace sdmmon::protocol

#endif  // SDMMON_SDMMON_CHANNEL_HPP
