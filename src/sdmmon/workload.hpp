// Runtime workload management. The paper defers the *when to install*
// decision to prior work ([7,13]) and secures only the installation
// itself; this module supplies a simple such decision-maker so the system
// runs closed-loop: it classifies traffic to applications (by UDP
// destination port), tracks per-app load, and periodically remaps the
// MPSoC's cores proportionally to the observed shares using the device's
// fast in-memory switching (no new cryptographic install needed).
#ifndef SDMMON_SDMMON_WORKLOAD_HPP
#define SDMMON_SDMMON_WORKLOAD_HPP

#include <map>
#include <string>
#include <vector>

#include "sdmmon/entities.hpp"

namespace sdmmon::protocol {

class WorkloadManager {
 public:
  explicit WorkloadManager(NetworkProcessorDevice& device);

  /// Route UDP packets with dst port in [lo, hi] to `app_name` (must be
  /// resident in the device's app store at dispatch time).
  void add_port_rule(std::uint16_t port_lo, std::uint16_t port_hi,
                     const std::string& app_name);

  /// App for traffic matching no rule (and non-UDP/unparsable packets).
  void set_default_app(const std::string& app_name) { default_app_ = app_name; }

  /// Name of the app this packet belongs to.
  const std::string& classify(std::span<const std::uint8_t> packet) const;

  /// Classify, account, and dispatch to a core currently running the
  /// packet's app (round-robin among that app's cores). Packets whose app
  /// has no core yet are handled by core 0's current app (and counted, so
  /// the next rebalance assigns capacity).
  np::PacketResult process(std::span<const std::uint8_t> packet);

  /// Remap cores proportionally to the observed per-app load since the
  /// last rebalance (largest-remainder; every observed app gets >= 1
  /// core). Switches only cores whose assignment changes; resets the
  /// observation window. Returns the number of cores switched.
  std::size_t rebalance();

  /// Current core -> app assignment ("" = untouched since construction).
  const std::vector<std::string>& assignment() const { return assignment_; }

  const std::map<std::string, std::uint64_t>& observed() const {
    return counts_;
  }

 private:
  struct PortRule {
    std::uint16_t lo, hi;
    std::string app;
  };

  NetworkProcessorDevice& device_;
  std::vector<PortRule> rules_;
  std::string default_app_;
  std::map<std::string, std::uint64_t> counts_;
  std::vector<std::string> assignment_;
  std::map<std::string, std::size_t> next_core_;  // round-robin cursor
};

}  // namespace sdmmon::protocol

#endif  // SDMMON_SDMMON_WORKLOAD_HPP
