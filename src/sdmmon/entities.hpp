// The three entities of the SDMMon security model (paper Section 2.2 and
// Figure 3): network processor manufacturer, network operator, and the NP
// device. Key management follows the paper exactly:
//  * at manufacturing time the device gets its own keypair (K_R) and the
//    manufacturer's public key (K_M+) as root of trust;
//  * at installation time the manufacturer certifies the operator's
//    public key;
//  * at programming time the operator seals (binary, graph, hash param)
//    to the device; the device verifies the chain and installs.
#ifndef SDMMON_SDMMON_ENTITIES_HPP
#define SDMMON_SDMMON_ENTITIES_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "np/mpsoc.hpp"
#include "sdmmon/package.hpp"

namespace sdmmon::protocol {

class NetworkProcessorDevice;

/// Produces devices and certifies operators; holds the root keypair.
class Manufacturer {
 public:
  /// `key_bits` applies to the manufacturer's own keypair and to every
  /// device it provisions (the prototype used RSA-2048).
  Manufacturer(const std::string& name, std::size_t key_bits,
               crypto::Drbg drbg);

  const std::string& name() const { return name_; }
  const crypto::RsaPublicKey& public_key() const { return keys_.pub; }

  /// Issue the operator certificate (paper: "at installation time").
  crypto::Certificate certify_operator(const std::string& operator_name,
                                       const crypto::RsaPublicKey& operator_key,
                                       std::uint64_t valid_from,
                                       std::uint64_t valid_to);

  /// Provision a new device: generate K_R, install K_M+ as root of trust.
  /// `recovery` selects the device's attack-recovery policy.
  std::unique_ptr<NetworkProcessorDevice> provision_device(
      const std::string& device_name, std::size_t num_cores,
      np::RecoveryConfig recovery = {});

 private:
  std::string name_;
  std::size_t key_bits_;
  crypto::Drbg drbg_;
  crypto::RsaKeyPair keys_;
  std::uint64_t next_serial_ = 1;
};

/// Programs devices: extracts monitoring graphs, picks per-router hash
/// parameters, signs and seals install packages.
class NetworkOperator {
 public:
  NetworkOperator(const std::string& name, std::size_t key_bits,
                  crypto::Drbg drbg);

  const std::string& name() const { return name_; }
  const crypto::RsaPublicKey& public_key() const { return keys_.pub; }

  /// Store the certificate received from the manufacturer.
  void accept_certificate(crypto::Certificate cert) {
    cert_ = std::move(cert);
  }
  const crypto::Certificate& certificate() const { return cert_; }

  /// Build a sealed package for `device_pub`: choose a random 32-bit hash
  /// parameter, run offline analysis, sign, encrypt. Each call draws a
  /// fresh parameter -- the diversity mechanism of SR2.
  WirePackage program_device(const isa::Program& binary,
                             const crypto::RsaPublicKey& device_pub,
                             std::uint32_t pad_bytes = 0);

  /// The hash parameter chosen for the most recent package (tests only;
  /// a real operator keeps this secret per SR3).
  std::uint32_t last_hash_param() const { return last_hash_param_; }

  /// Sign an arbitrary message with the operator key -- used by the RPC
  /// control-plane client to answer per-session auth challenges with the
  /// same key the operator's certificate vouches for.
  util::Bytes sign(std::span<const std::uint8_t> message) const;

 private:
  std::string name_;
  crypto::Drbg drbg_;
  crypto::RsaKeyPair keys_;
  crypto::Certificate cert_;
  std::uint64_t sequence_ = 0;
  std::uint32_t last_hash_param_ = 0;
};

/// Outcome of a device-side installation attempt.
enum class InstallStatus : std::uint8_t {
  Ok,
  BadCertificate,   // chain to manufacturer failed / wrong role / expired
  WrongDevice,      // K_sym not sealed to this device (SR4)
  CorruptPackage,   // ciphertext or structure damaged
  BadSignature,     // operator signature invalid (SR1)
  ReplayRejected,   // sequence number not fresh
  GraphMismatch,    // monitoring graph does not match binary + parameter
  StageFailed,      // payload verified but could not be staged on the
                    // cores (e.g. binary exceeds the memory map); the
                    // previous configuration was kept running
};

const char* install_status_name(InstallStatus status);

/// True for rejections that retrying the same campaign cannot fix (bad
/// keys, certificates, signatures, or graphs); false for damage a lossy
/// channel can inflict on an otherwise-good package.
bool install_status_permanent(InstallStatus status);

/// One entry of the device's tamper-evident operations log. Every install
/// attempt (accepted or rejected, with its rejection reason) and every
/// fast switch is recorded -- the audit trail a network operator needs to
/// investigate attempted compromises of the reprogramming path.
struct AuditEvent {
  enum class Kind : std::uint8_t { InstallAttempt, FastSwitch };
  Kind kind = Kind::InstallAttempt;
  std::uint64_t time = 0;          // install: protocol time; switch: last seen
  std::string detail;              // app name or rejection reason
  InstallStatus status = InstallStatus::Ok;
};

/// A router's NP subsystem: control processor state (keys) + MPSoC.
class NetworkProcessorDevice {
 public:
  /// `recovery` configures the MPSoC's attack-recovery policy (default:
  /// the paper-baseline ResetAndContinue); fleet deployments that want a
  /// misbehaving device to quarantine itself pass QuarantineAfterK.
  NetworkProcessorDevice(std::string name, crypto::RsaKeyPair device_keys,
                         crypto::RsaPublicKey manufacturer_key,
                         std::size_t num_cores,
                         np::RecoveryConfig recovery = {});

  const std::string& name() const { return name_; }
  const crypto::RsaPublicKey& public_key() const { return keys_.pub; }

  /// The device-internal private key. A real router never exports K_R-;
  /// exposed here only so the instrumented timing pipeline
  /// (sdmmon/timed_install.hpp) can replay the install steps it measures.
  const crypto::RsaPrivateKey& private_key_for_instrumentation() const {
    return keys_.priv;
  }

  /// Full verify-decrypt-install pipeline (paper Table 2's steps 2-5).
  /// On success the binary+graph+hash are installed on every core and the
  /// application is retained in the on-device store for fast switching.
  /// Atomic: any failure -- including a mid-pipeline exception while
  /// staging the new configuration -- leaves the previously-installed
  /// application running on every core.
  InstallStatus install(const WirePackage& wire, std::uint64_t now);

  /// What a device actually receives from the network: serialized wire
  /// bytes, possibly damaged in flight. Parses and then runs the full
  /// install pipeline; structural damage reports CorruptPackage instead
  /// of surfacing a decode exception.
  InstallStatus install_bytes(std::span<const std::uint8_t> wire_bytes,
                              std::uint64_t now);

  /// Result of the most recent install attempt (Ok before any attempt).
  InstallStatus last_install_status() const { return last_install_status_; }
  bool last_install_ok() const {
    return last_install_status_ == InstallStatus::Ok;
  }
  bool install_attempted() const { return install_attempted_; }

  /// Fast application switch (paper Sec 4.2: "switching between
  /// applications already installed ... can be done quickly ... by keeping
  /// multiple binaries and graphs in memory"). No cryptography: the stored
  /// app was already authenticated at install time. Returns false if the
  /// name is not in the store.
  bool switch_to(const std::string& app_name);

  /// Per-core fast switch (heterogeneous workload mapping): activate a
  /// stored app on one core only. Returns false for unknown app/core.
  bool switch_core_to(std::size_t core_index, const std::string& app_name);

  /// Names of authenticated applications held in device memory.
  std::vector<std::string> stored_apps() const;

  /// Total device memory consumed by the store (binaries + graphs), for
  /// capacity planning.
  std::size_t store_bytes() const;

  /// Operations log (install attempts incl. rejections, fast switches).
  const std::vector<AuditEvent>& audit_log() const { return audit_; }

  /// Re-check the monitoring graph against the binary before accepting
  /// (defense-in-depth beyond the paper; toggleable for fidelity).
  void set_verify_graph(bool on) { verify_graph_ = on; }

  bool has_application() const { return installed_; }
  const std::string& application_name() const { return app_name_; }

  np::Mpsoc& mpsoc() { return soc_; }
  const np::Mpsoc& mpsoc() const { return soc_; }

  np::PacketResult process_packet(std::span<const std::uint8_t> packet,
                                  std::uint32_t flow_key = 0) {
    return soc_.process_packet(packet, flow_key);
  }

 private:
  /// An authenticated application retained for fast switching. The
  /// monitoring graph is kept in compiled form and the binary's text in
  /// predecoded form: both were verified against the package at install
  /// time, compiled exactly once, and the immutable artifacts are shared
  /// by the store and every core the app is activated on -- a fast
  /// switch is a pair of pointer swaps, never a recompilation or a
  /// re-decode.
  struct StoredApp {
    isa::Program binary;
    np::InstallArtifacts artifacts;
    std::uint32_t hash_param = 0;
  };

  void activate(const StoredApp& app);
  InstallStatus install_impl(const WirePackage& wire, std::uint64_t now);
  InstallStatus record_install(InstallStatus status, std::uint64_t now);

  std::string name_;
  crypto::RsaKeyPair keys_;
  crypto::RsaPublicKey manufacturer_key_;
  np::Mpsoc soc_;
  bool installed_ = false;
  bool verify_graph_ = true;
  std::string app_name_;
  InstallStatus last_install_status_ = InstallStatus::Ok;
  bool install_attempted_ = false;
  std::uint64_t last_sequence_ = 0;
  std::uint64_t last_time_ = 0;
  std::map<std::string, StoredApp> store_;
  std::vector<AuditEvent> audit_;
};

}  // namespace sdmmon::protocol

#endif  // SDMMON_SDMMON_ENTITIES_HPP
