#include "sdmmon/workload.hpp"

#include <algorithm>

#include "net/packet.hpp"

namespace sdmmon::protocol {

WorkloadManager::WorkloadManager(NetworkProcessorDevice& device)
    : device_(device), assignment_(device.mpsoc().num_cores()) {}

void WorkloadManager::add_port_rule(std::uint16_t port_lo,
                                    std::uint16_t port_hi,
                                    const std::string& app_name) {
  rules_.push_back({port_lo, port_hi, app_name});
}

const std::string& WorkloadManager::classify(
    std::span<const std::uint8_t> packet) const {
  auto ip = net::Ipv4Packet::parse(packet);
  if (ip && ip->protocol == 17) {
    auto udp = net::UdpDatagram::parse(ip->payload);
    if (udp) {
      for (const PortRule& rule : rules_) {
        if (udp->dst_port >= rule.lo && udp->dst_port <= rule.hi) {
          return rule.app;
        }
      }
    }
  }
  return default_app_;
}

np::PacketResult WorkloadManager::process(
    std::span<const std::uint8_t> packet) {
  const std::string& app = classify(packet);
  ++counts_[app];

  // Cores currently assigned to this app.
  std::vector<std::size_t> candidates;
  for (std::size_t c = 0; c < assignment_.size(); ++c) {
    if (assignment_[c] == app) candidates.push_back(c);
  }
  std::size_t core = 0;
  if (!candidates.empty()) {
    std::size_t& cursor = next_core_[app];
    core = candidates[cursor % candidates.size()];
    ++cursor;
  }
  return device_.mpsoc().core(core).process_packet(packet);
}

std::size_t WorkloadManager::rebalance() {
  const std::size_t cores = assignment_.size();
  if (cores == 0 || counts_.empty()) return 0;

  // Keep only apps that are actually resident.
  std::vector<std::pair<std::string, std::uint64_t>> loads;
  std::uint64_t total = 0;
  auto resident = device_.stored_apps();
  for (const auto& [app, count] : counts_) {
    if (std::find(resident.begin(), resident.end(), app) == resident.end()) {
      continue;
    }
    loads.emplace_back(app, count);
    total += count;
  }
  if (loads.empty() || total == 0) return 0;
  // Heaviest first so leftover cores favor hot apps.
  std::sort(loads.begin(), loads.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  // Largest-remainder apportionment with a floor of one core per app.
  std::vector<std::size_t> quota(loads.size(), 1);
  std::size_t assigned = std::min(loads.size(), cores);
  quota.resize(assigned, 1);
  loads.resize(assigned);
  for (std::size_t round = assigned; round < cores; ++round) {
    // Give the next core to the app with the largest load-per-core.
    std::size_t best = 0;
    double best_ratio = -1;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      double ratio = static_cast<double>(loads[i].second) /
                     static_cast<double>(quota[i] + 1);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    ++quota[best];
  }

  // Materialize the new assignment and switch changed cores.
  std::vector<std::string> fresh;
  fresh.reserve(cores);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    for (std::size_t q = 0; q < quota[i]; ++q) fresh.push_back(loads[i].first);
  }
  while (fresh.size() < cores) fresh.push_back(loads[0].first);

  std::size_t switched = 0;
  for (std::size_t c = 0; c < cores; ++c) {
    if (assignment_[c] == fresh[c]) continue;
    if (device_.switch_core_to(c, fresh[c])) {
      assignment_[c] = fresh[c];
      ++switched;
    }
  }
  counts_.clear();
  next_core_.clear();
  return switched;
}

}  // namespace sdmmon::protocol
