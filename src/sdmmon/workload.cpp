#include "sdmmon/workload.hpp"

#include <algorithm>
#include <thread>

#include "net/packet.hpp"
#include "util/rng.hpp"

namespace sdmmon::protocol {

MixedWorkload::MixedWorkload(MixedWorkloadConfig config)
    : config_(std::move(config)) {}

WorkItem MixedWorkload::item(std::uint64_t index) const {
  // Per-index stream: Rng seeds through splitmix64, which decorrelates
  // consecutive (seed ^ f(index)) values, so every packet draws from an
  // independent-looking stream regardless of generation order.
  util::Rng rng(config_.seed ^ (index * 0x9E3779B97F4A7C15ull + 1));

  WorkItem out;
  if (config_.attack_rate > 0.0 && rng.chance(config_.attack_rate)) {
    out.attack = true;
    out.packet = config_.attack_packet;
    out.flow_key = rng.next_u32();
    return out;
  }

  const std::uint32_t flow =
      static_cast<std::uint32_t>(index % std::max<std::size_t>(1, config_.flows));
  const std::size_t payload_len =
      config_.min_payload +
      rng.below(config_.max_payload - config_.min_payload + 1);
  util::Bytes payload(payload_len);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());

  out.flow_key = flow;
  out.packet = net::make_udp_packet(
      net::ip(10, 0, static_cast<std::uint8_t>(flow >> 8),
              static_cast<std::uint8_t>(flow)),
      net::ip(192, 168, 1, static_cast<std::uint8_t>(flow)),
      static_cast<std::uint16_t>(1024 + flow),
      static_cast<std::uint16_t>(8000 + flow % 100), payload);
  return out;
}

std::vector<WorkItem> MixedWorkload::generate(std::uint64_t begin,
                                              std::uint64_t count) const {
  std::vector<WorkItem> items(count);
  for (std::uint64_t i = 0; i < count; ++i) items[i] = item(begin + i);
  return items;
}

std::vector<WorkItem> MixedWorkload::generate_parallel(
    std::uint64_t begin, std::uint64_t count, std::size_t threads) const {
  threads = std::max<std::size_t>(1, std::min(threads, count ? count : 1));
  if (threads == 1) return generate(begin, count);

  std::vector<WorkItem> items(count);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const std::uint64_t shard = (count + threads - 1) / threads;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::uint64_t lo = t * shard;
    const std::uint64_t hi = std::min<std::uint64_t>(count, lo + shard);
    if (lo >= hi) break;
    pool.emplace_back([this, &items, begin, lo, hi] {
      for (std::uint64_t i = lo; i < hi; ++i) items[i] = item(begin + i);
    });
  }
  for (std::thread& t : pool) t.join();
  return items;
}

WorkloadManager::WorkloadManager(NetworkProcessorDevice& device)
    : device_(device), assignment_(device.mpsoc().num_cores()) {}

void WorkloadManager::add_port_rule(std::uint16_t port_lo,
                                    std::uint16_t port_hi,
                                    const std::string& app_name) {
  rules_.push_back({port_lo, port_hi, app_name});
}

const std::string& WorkloadManager::classify(
    std::span<const std::uint8_t> packet) const {
  auto ip = net::Ipv4Packet::parse(packet);
  if (ip && ip->protocol == 17) {
    auto udp = net::UdpDatagram::parse(ip->payload);
    if (udp) {
      for (const PortRule& rule : rules_) {
        if (udp->dst_port >= rule.lo && udp->dst_port <= rule.hi) {
          return rule.app;
        }
      }
    }
  }
  return default_app_;
}

np::PacketResult WorkloadManager::process(
    std::span<const std::uint8_t> packet) {
  const std::string& app = classify(packet);
  ++counts_[app];

  // Cores currently assigned to this app.
  std::vector<std::size_t> candidates;
  for (std::size_t c = 0; c < assignment_.size(); ++c) {
    if (assignment_[c] == app) candidates.push_back(c);
  }
  std::size_t core = 0;
  if (!candidates.empty()) {
    std::size_t& cursor = next_core_[app];
    core = candidates[cursor % candidates.size()];
    ++cursor;
  }
  return device_.mpsoc().core(core).process_packet(packet);
}

std::size_t WorkloadManager::rebalance() {
  const std::size_t cores = assignment_.size();
  if (cores == 0 || counts_.empty()) return 0;

  // Keep only apps that are actually resident.
  std::vector<std::pair<std::string, std::uint64_t>> loads;
  std::uint64_t total = 0;
  auto resident = device_.stored_apps();
  for (const auto& [app, count] : counts_) {
    if (std::find(resident.begin(), resident.end(), app) == resident.end()) {
      continue;
    }
    loads.emplace_back(app, count);
    total += count;
  }
  if (loads.empty() || total == 0) return 0;
  // Heaviest first so leftover cores favor hot apps.
  std::sort(loads.begin(), loads.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  // Largest-remainder apportionment with a floor of one core per app.
  std::vector<std::size_t> quota(loads.size(), 1);
  std::size_t assigned = std::min(loads.size(), cores);
  quota.resize(assigned, 1);
  loads.resize(assigned);
  for (std::size_t round = assigned; round < cores; ++round) {
    // Give the next core to the app with the largest load-per-core.
    std::size_t best = 0;
    double best_ratio = -1;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      double ratio = static_cast<double>(loads[i].second) /
                     static_cast<double>(quota[i] + 1);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    ++quota[best];
  }

  // Materialize the new assignment and switch changed cores.
  std::vector<std::string> fresh;
  fresh.reserve(cores);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    for (std::size_t q = 0; q < quota[i]; ++q) fresh.push_back(loads[i].first);
  }
  while (fresh.size() < cores) fresh.push_back(loads[0].first);

  std::size_t switched = 0;
  for (std::size_t c = 0; c < cores; ++c) {
    if (assignment_[c] == fresh[c]) continue;
    if (device_.switch_core_to(c, fresh[c])) {
      assignment_[c] = fresh[c];
      ++switched;
    }
  }
  counts_.clear();
  next_core_.clear();
  return switched;
}

}  // namespace sdmmon::protocol
