// SDMMon install package (paper Figure 3, "at programming time"):
//
//   payload   = binary || monitoring graph || 32-bit hash parameter
//   signature = RSA-sign(operator_priv, payload)
//   K_sym     = fresh AES key; wrapped = RSA-encrypt(device_pub, K_sym)
//   wire      = AES-CBC(K_sym, payload || signature) || wrapped || IV
//
// SR1 (authenticity) comes from the signature + the operator certificate
// chain; SR3 (confidentiality) from the AES encryption; SR4 (device
// binding) from wrapping K_sym with the *device's* public key -- only the
// intended router can recover the payload.
#ifndef SDMMON_SDMMON_PACKAGE_HPP
#define SDMMON_SDMMON_PACKAGE_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/cert.hpp"
#include "crypto/drbg.hpp"
#include "crypto/rsa.hpp"
#include "isa/program.hpp"
#include "monitor/graph.hpp"

namespace sdmmon::protocol {

/// Plaintext contents of an install package.
struct PackagePayload {
  isa::Program binary;
  monitor::MonitoringGraph graph;
  std::uint32_t hash_param = 0;
  std::uint64_t sequence = 0;   // anti-replay install counter
  /// Optional padding (models the paper's larger production binaries so
  /// the timing benches can reproduce Table 2 at paper scale).
  std::uint32_t pad_bytes = 0;

  util::Bytes serialize() const;
  static PackagePayload deserialize(std::span<const std::uint8_t> bytes);
};

/// Encrypted-and-signed wire form, as transmitted to the router.
struct WirePackage {
  util::Bytes ciphertext;     // AES-CBC(payload || signature)
  util::Bytes wrapped_key;    // RSA(device_pub, K_sym)
  std::array<std::uint8_t, 16> iv{};
  crypto::Certificate operator_cert;

  util::Bytes serialize() const;
  static WirePackage deserialize(std::span<const std::uint8_t> bytes);

  std::size_t wire_size() const { return serialize().size(); }
};

/// Build a wire package: sign payload with the operator key, encrypt with
/// a fresh K_sym drawn from `drbg`, wrap K_sym to `device_pub`.
WirePackage seal_package(const PackagePayload& payload,
                         const crypto::RsaPrivateKey& operator_priv,
                         const crypto::Certificate& operator_cert,
                         const crypto::RsaPublicKey& device_pub,
                         crypto::Drbg& drbg);

/// Device-side outcome of open_package.
enum class OpenStatus : std::uint8_t {
  Ok,
  WrongDevice,       // K_sym unwrap failed (package sealed to another router)
  CorruptCiphertext, // AES decrypt / padding failure
  BadSignature,      // operator signature check failed
  Malformed,         // payload failed to parse
};

const char* open_status_name(OpenStatus status);

struct OpenResult {
  OpenStatus status = OpenStatus::Malformed;
  std::optional<PackagePayload> payload;  // set when status == Ok
};

/// Decrypt and verify a wire package with the device's private key and the
/// operator public key (caller has already validated the certificate).
OpenResult open_package(const WirePackage& wire,
                        const crypto::RsaPrivateKey& device_priv,
                        const crypto::RsaPublicKey& operator_pub);

}  // namespace sdmmon::protocol

#endif  // SDMMON_SDMMON_PACKAGE_HPP
