#include "sdmmon/package.hpp"

#include "crypto/aes.hpp"

namespace sdmmon::protocol {

namespace {
constexpr std::size_t kAesKeyBytes = 16;  // AES-128, as in the prototype
}

util::Bytes PackagePayload::serialize() const {
  util::ByteWriter w;
  w.blob(binary.serialize());
  w.blob(graph.serialize());
  w.u32(hash_param);
  w.u64(sequence);
  w.u32(pad_bytes);
  // Deterministic padding content (zeros) sized by pad_bytes.
  w.raw(util::Bytes(pad_bytes, 0));
  return w.take();
}

PackagePayload PackagePayload::deserialize(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  PackagePayload payload;
  payload.binary = isa::Program::deserialize(r.blob());
  payload.graph = monitor::MonitoringGraph::deserialize(r.blob());
  payload.hash_param = r.u32();
  payload.sequence = r.u64();
  payload.pad_bytes = r.u32();
  (void)r.raw(payload.pad_bytes);
  return payload;
}

util::Bytes WirePackage::serialize() const {
  util::ByteWriter w;
  w.blob(ciphertext);
  w.blob(wrapped_key);
  w.raw(std::span<const std::uint8_t>(iv.data(), iv.size()));
  w.blob(operator_cert.serialize());
  return w.take();
}

WirePackage WirePackage::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  WirePackage wire;
  wire.ciphertext = r.blob();
  wire.wrapped_key = r.blob();
  util::Bytes iv = r.raw(16);
  std::copy(iv.begin(), iv.end(), wire.iv.begin());
  wire.operator_cert = crypto::Certificate::deserialize(r.blob());
  return wire;
}

const char* open_status_name(OpenStatus status) {
  switch (status) {
    case OpenStatus::Ok: return "ok";
    case OpenStatus::WrongDevice: return "wrong-device";
    case OpenStatus::CorruptCiphertext: return "corrupt-ciphertext";
    case OpenStatus::BadSignature: return "bad-signature";
    case OpenStatus::Malformed: return "malformed";
  }
  return "?";
}

WirePackage seal_package(const PackagePayload& payload,
                         const crypto::RsaPrivateKey& operator_priv,
                         const crypto::Certificate& operator_cert,
                         const crypto::RsaPublicKey& device_pub,
                         crypto::Drbg& drbg) {
  util::Bytes plain = payload.serialize();
  util::Bytes signature = crypto::rsa_sign(operator_priv, plain);

  // payload || signature under AES-CBC with fresh key and IV.
  util::ByteWriter inner;
  inner.blob(plain);
  inner.blob(signature);

  util::Bytes k_sym = drbg.bytes(kAesKeyBytes);
  WirePackage wire;
  drbg.fill(wire.iv);
  wire.ciphertext = crypto::aes_cbc_encrypt(k_sym, wire.iv, inner.bytes());
  wire.wrapped_key = crypto::rsa_encrypt(device_pub, k_sym, drbg);
  wire.operator_cert = operator_cert;
  return wire;
}

OpenResult open_package(const WirePackage& wire,
                        const crypto::RsaPrivateKey& device_priv,
                        const crypto::RsaPublicKey& operator_pub) {
  OpenResult result;

  auto k_sym = crypto::rsa_decrypt(device_priv, wire.wrapped_key);
  if (!k_sym || k_sym->size() != kAesKeyBytes) {
    result.status = OpenStatus::WrongDevice;
    return result;
  }

  util::Bytes inner;
  try {
    inner = crypto::aes_cbc_decrypt(*k_sym, wire.iv, wire.ciphertext);
  } catch (const crypto::AesError&) {
    result.status = OpenStatus::CorruptCiphertext;
    return result;
  }

  util::Bytes plain, signature;
  try {
    util::ByteReader r(inner);
    plain = r.blob();
    signature = r.blob();
  } catch (const util::DecodeError&) {
    result.status = OpenStatus::CorruptCiphertext;
    return result;
  }

  if (!crypto::rsa_verify(operator_pub, plain, signature)) {
    result.status = OpenStatus::BadSignature;
    return result;
  }

  try {
    result.payload = PackagePayload::deserialize(plain);
  } catch (const std::exception&) {
    result.status = OpenStatus::Malformed;
    return result;
  }
  result.status = OpenStatus::Ok;
  return result;
}

}  // namespace sdmmon::protocol
