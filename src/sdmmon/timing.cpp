#include "sdmmon/timing.hpp"

namespace sdmmon::protocol {

double NiosTimingModel::compute_seconds(const crypto::OpCounters& ops) const {
  const double cycles =
      static_cast<double>(ops.limb_muls) * config_.cycles_per_limb_mul +
      static_cast<double>(ops.aes_blocks) * config_.cycles_per_aes_block +
      static_cast<double>(ops.sha256_blocks) * config_.cycles_per_sha_block;
  return cycles / config_.clock_hz;
}

double NiosTimingModel::download_seconds(std::size_t bytes) const {
  return config_.download_rtt_s +
         static_cast<double>(bytes) * 8.0 / config_.download_goodput_bps;
}

double NiosTimingModel::switch_seconds(std::size_t app_bytes) const {
  return config_.switch_overhead_s +
         static_cast<double>(app_bytes) * 8.0 / config_.memory_bandwidth_bps;
}

}  // namespace sdmmon::protocol
