// Instrumented install pipeline: runs the exact security steps of Table 2
// (download -> certificate check -> K_sym unwrap -> AES package decrypt ->
// signature verify), recording primitive-op counts per step and converting
// them to modeled Nios II seconds. Used by the Table 2 bench and by the
// install-scaling ablation.
#ifndef SDMMON_SDMMON_TIMED_INSTALL_HPP
#define SDMMON_SDMMON_TIMED_INSTALL_HPP

#include "sdmmon/package.hpp"
#include "sdmmon/timing.hpp"

namespace sdmmon::protocol {

struct TimedInstallResult {
  bool ok = false;
  OpenStatus open_status = OpenStatus::Malformed;
  crypto::CertStatus cert_status = crypto::CertStatus::BadSignature;
  std::size_t wire_bytes = 0;

  // Per-step primitive-op counts.
  crypto::OpCounters cert_ops;
  crypto::OpCounters unwrap_ops;
  crypto::OpCounters aes_ops;
  crypto::OpCounters verify_ops;

  /// Modeled Nios II seconds for each step (Table 2 rows).
  InstallTiming timing(const NiosTimingModel& model) const;

  /// Host wall-clock seconds per step, for the raw-host comparison column.
  double host_cert_s = 0;
  double host_unwrap_s = 0;
  double host_aes_s = 0;
  double host_verify_s = 0;
};

/// Execute and instrument the device-side pipeline. Mirrors
/// NetworkProcessorDevice::install but records per-step costs.
TimedInstallResult timed_install(const WirePackage& wire,
                                 const crypto::RsaPrivateKey& device_priv,
                                 const crypto::RsaPublicKey& manufacturer_key,
                                 std::uint64_t now);

}  // namespace sdmmon::protocol

#endif  // SDMMON_SDMMON_TIMED_INSTALL_HPP
