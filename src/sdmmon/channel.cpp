#include "sdmmon/channel.hpp"

namespace sdmmon::protocol {

const char* channel_status_name(ChannelStatus status) {
  switch (status) {
    case ChannelStatus::Delivered: return "delivered";
    case ChannelStatus::RequestLost: return "request-lost";
    case ChannelStatus::ReplyLost: return "reply-lost";
  }
  return "?";
}

ChannelResult DirectChannel::send_install(NetworkProcessorDevice& device,
                                          const WirePackage& wire,
                                          std::uint64_t now) {
  util::Bytes bytes = wire.serialize();
  return {ChannelStatus::Delivered, device.install_bytes(bytes, now)};
}

ChannelResult LossyChannel::send_install(NetworkProcessorDevice& device,
                                         const WirePackage& wire,
                                         std::uint64_t now) {
  if (faults_.drop_message()) return {ChannelStatus::RequestLost, {}};

  util::Bytes bytes = wire.serialize();
  faults_.maybe_corrupt(bytes);
  faults_.maybe_truncate(bytes);

  // Delay shifts the device-side arrival time; skew shifts the device's
  // own clock. Both feed the certificate-validity check.
  std::uint64_t device_now = faults_.skew_clock(now + faults_.delay_message());
  InstallStatus status = device.install_bytes(bytes, device_now);

  if (faults_.drop_message()) return {ChannelStatus::ReplyLost, status};
  return {ChannelStatus::Delivered, status};
}

}  // namespace sdmmon::protocol
