#include "obs/metrics.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace sdmmon::obs {

Histogram::Histogram(std::span<const std::uint64_t> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(upper_bounds.size() + 1) {
  if (std::adjacent_find(bounds_.begin(), bounds_.end(),
                         std::greater_equal<std::uint64_t>()) !=
      bounds_.end()) {
    throw std::invalid_argument(
        "histogram bounds must be strictly ascending");
  }
}

void Histogram::record(std::uint64_t value) {
  // Buckets are few (<= ~20); linear scan beats binary search at this
  // size and stays branch-predictable for clustered samples.
  std::size_t index = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      index = i;
      break;
    }
  }
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

Registry::Registry(std::size_t journal_capacity)
    : journal_(journal_capacity) {}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const std::uint64_t> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

void Registry::set_sample_period(std::uint32_t period) {
  sample_period_.store(std::max<std::uint32_t>(period, 1),
                       std::memory_order_relaxed);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      snap.counters.emplace(name, c->value());
    }
    for (const auto& [name, g] : gauges_) {
      snap.gauges.emplace(name, g->value());
    }
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot hs;
      hs.bounds = h->bounds();
      hs.counts.reserve(h->num_buckets());
      for (std::size_t i = 0; i < h->num_buckets(); ++i) {
        hs.counts.push_back(h->bucket_count(i));
      }
      hs.count = h->count();
      hs.sum = h->sum();
      if (hs.count > 0) {
        hs.min = h->min();
        hs.max = h->max();
      }
      snap.histograms.emplace(name, std::move(hs));
    }
  }
  snap.events = journal_.events();
  snap.events_recorded = journal_.recorded();
  snap.events_evicted = journal_.evicted();
  return snap;
}

std::string Registry::snapshot_json() const {
  const Snapshot snap = snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(1);
  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) {
    w.key(name).value(v);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) {
    w.key(name).value(v);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (std::uint64_t b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.end_object();
  }
  w.end_object();
  w.key("events");
  journal_.append_json(w);
  w.key("events_recorded").value(snap.events_recorded);
  w.key("events_evicted").value(snap.events_evicted);
  w.end_object();
  return w.str();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

namespace {
// Canonical edges. Instructions: packet handlers run tens to a few
// thousand instructions. Widths: the NFA rarely tracks more than a
// handful of nodes. Depths: shard-queue depths and dirty-page counts,
// bounded by the speculation window (batch_size). Latency:
// log-spaced 1us .. 1s.
constexpr std::uint64_t kInstr[] = {16,   32,   64,    128,   256,  512,
                                    1024, 2048, 4096,  8192,  16384};
constexpr std::uint64_t kWidth[] = {1, 2, 3, 4, 6, 8, 12, 16, 32};
constexpr std::uint64_t kDepth[] = {0, 1, 2, 4, 8, 16, 32, 64, 128, 256,
                                    512, 1024};
constexpr std::uint64_t kLatNs[] = {1000,      4000,      16000,
                                    64000,     256000,    1000000,
                                    4000000,   16000000,  64000000,
                                    256000000, 1000000000};
}  // namespace

std::span<const std::uint64_t> instruction_buckets() { return kInstr; }
std::span<const std::uint64_t> width_buckets() { return kWidth; }
std::span<const std::uint64_t> depth_buckets() { return kDepth; }
std::span<const std::uint64_t> latency_ns_buckets() { return kLatNs; }

}  // namespace sdmmon::obs
