// Canonical metric names. Every instrumented subsystem registers its
// metrics under a constant from this header, and tools/check_docs.sh
// fails CI when a name listed here is missing from the catalog in
// docs/OBSERVABILITY.md -- the catalog cannot silently drift.
//
// Naming scheme: <subsystem>.<object>.<quantity>[.<core-index>]. Per-core
// metrics append ".<i>" at registration time (e.g. "np.core.packets.3").
#ifndef SDMMON_OBS_NAMES_HPP
#define SDMMON_OBS_NAMES_HPP

namespace sdmmon::obs::names {

// ---- per monitored core (suffix ".<core>" appended by the engine) ----
inline constexpr const char* kCorePackets = "np.core.packets";
inline constexpr const char* kCoreForwarded = "np.core.forwarded";
inline constexpr const char* kCoreDropped = "np.core.dropped";
inline constexpr const char* kCoreAttacks = "np.core.attacks";
inline constexpr const char* kCoreTraps = "np.core.traps";
inline constexpr const char* kCoreInstructions = "np.core.instructions";
inline constexpr const char* kCoreInstrPerPacket =
    "np.core.instr_per_packet";
inline constexpr const char* kCoreNdfaWidth = "np.core.ndfa_width";
inline constexpr const char* kCorePredecodeNs = "np.core.predecode_ns";
inline constexpr const char* kCoreBlockFuseNs = "np.core.block_fuse_ns";
inline constexpr const char* kCoreTraceExecNs = "np.core.trace_exec_ns";

// ---- execution engines (serial Mpsoc and ParallelMpsoc) ----
inline constexpr const char* kEngineDispatched = "np.engine.dispatched";
inline constexpr const char* kEngineUndispatched = "np.engine.undispatched";
inline constexpr const char* kEngineInstalls = "np.engine.installs";
inline constexpr const char* kEngineQuarantines = "np.engine.quarantines";
inline constexpr const char* kEngineReinstalls = "np.engine.reinstalls";
inline constexpr const char* kEngineHealthyCores =
    "np.engine.healthy_cores";
inline constexpr const char* kEngineGraphCompileNs =
    "np.engine.graph_compile_ns";
inline constexpr const char* kEngineCompiledGraphNodes =
    "np.engine.compiled_graph_nodes";
inline constexpr const char* kEngineCompiledGraphEdges =
    "np.engine.compiled_graph_edges";
inline constexpr const char* kEngineCompiledGraphBytes =
    "np.engine.compiled_graph_bytes";
inline constexpr const char* kEngineCompiledProgramOps =
    "np.engine.compiled_program_ops";
inline constexpr const char* kEngineCompiledProgramBlocks =
    "np.engine.compiled_program_blocks";
inline constexpr const char* kEngineCompiledProgramBytes =
    "np.engine.compiled_program_bytes";
inline constexpr const char* kEngineFusedRuns = "np.engine.fused_runs";
inline constexpr const char* kEngineFusedOps = "np.engine.fused_ops";
inline constexpr const char* kEngineTraceCount = "np.engine.trace_count";
inline constexpr const char* kEngineTraceOps = "np.engine.trace_ops";
inline constexpr const char* kEngineTraceSideExitRate =
    "np.engine.trace_side_exit_rate";

// ---- recovery controller decisions ----
inline constexpr const char* kRecoveryWindowOccupancy =
    "np.recovery.window_occupancy";
inline constexpr const char* kRecoveryReinstallNs =
    "np.recovery.reinstall_ns";

// ---- parallel engine internals (sharded engine) ----
inline constexpr const char* kParallelShardSteals =
    "np.parallel.shard_steals";
inline constexpr const char* kParallelShardEpochs =
    "np.parallel.shard_epochs";
inline constexpr const char* kParallelShardQueueDepth =
    "np.parallel.shard_queue_depth";
inline constexpr const char* kParallelRollbacks = "np.parallel.rollbacks";
inline constexpr const char* kParallelReplayedPackets =
    "np.parallel.replayed_packets";
inline constexpr const char* kParallelRollbackBytes =
    "np.parallel.rollback_bytes";
// Registered by the parallel engine only (dirty-page capture is its
// speculation mechanism); per-snapshot, not per-core suffixed.
inline constexpr const char* kCoreSnapshotDirtyPages =
    "np.core.snapshot_dirty_pages";

// ---- fleet campaigns (operator side) ----
inline constexpr const char* kFleetAttempts = "fleet.attempts";
inline constexpr const char* kFleetRetries = "fleet.retries";
inline constexpr const char* kFleetInstalled = "fleet.installed";
inline constexpr const char* kFleetRejected = "fleet.rejected";
inline constexpr const char* kFleetChannelLost = "fleet.channel_lost";
inline constexpr const char* kFleetBudgetExhausted =
    "fleet.budget_exhausted";
inline constexpr const char* kFleetSkippedUnhealthy =
    "fleet.skipped_unhealthy";
inline constexpr const char* kFleetAttemptsPerDevice =
    "fleet.attempts_per_device";
inline constexpr const char* kFleetBackoffMs = "fleet.backoff_ms";

// ---- fleet simulation (discrete-event rollout service) ----
inline constexpr const char* kFleetSimDevices = "fleet.sim.devices";
inline constexpr const char* kFleetSimConverged = "fleet.sim.converged";
inline constexpr const char* kFleetSimInstalls = "fleet.sim.installs";
inline constexpr const char* kFleetSimRejections = "fleet.sim.rejections";
inline constexpr const char* kFleetSimQuarantines =
    "fleet.sim.quarantines";
inline constexpr const char* kFleetSimUnreachable =
    "fleet.sim.unreachable";
inline constexpr const char* kFleetSimRollbacks = "fleet.sim.rollbacks";
inline constexpr const char* kFleetRolloutWave = "fleet.rollout.wave";
inline constexpr const char* kFleetRolloutHalts = "fleet.rollout.halts";
inline constexpr const char* kFleetHealthScore = "fleet.health.score";

// ---- RPC control-plane server (device side) ----
inline constexpr const char* kRpcSessionsOpened = "rpc.sessions_opened";
inline constexpr const char* kRpcSessionsActive = "rpc.sessions_active";
inline constexpr const char* kRpcSessionsRefused = "rpc.sessions_refused";
inline constexpr const char* kRpcAuthFailures = "rpc.auth_failures";
inline constexpr const char* kRpcRequests = "rpc.requests";
inline constexpr const char* kRpcErrors = "rpc.errors";
inline constexpr const char* kRpcFramesRejected = "rpc.frames_rejected";
inline constexpr const char* kRpcDedupReplays = "rpc.dedup_replays";
inline constexpr const char* kRpcInstalls = "rpc.installs";
inline constexpr const char* kRpcRotations = "rpc.rotations";
inline constexpr const char* kRpcBytesIn = "rpc.bytes_in";
inline constexpr const char* kRpcBytesOut = "rpc.bytes_out";
inline constexpr const char* kRpcRequestNs = "rpc.request_ns";

}  // namespace sdmmon::obs::names

#endif  // SDMMON_OBS_NAMES_HPP
