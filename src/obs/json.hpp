// Minimal JSON support for the observability layer: a streaming writer
// (used by Registry::snapshot_json, the event journal, and the bench
// JSON reports) and a small recursive-descent parser (used by tests to
// round-trip snapshots and by tooling that validates BENCH_*.json).
// Deliberately tiny -- objects, arrays, strings, integers, doubles,
// booleans, null -- because every schema we emit is flat and known.
#ifndef SDMMON_OBS_JSON_HPP
#define SDMMON_OBS_JSON_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sdmmon::obs {

/// One JSON scalar, carried by value. Exists so call sites can pass
/// heterogeneous row values ({"app", "ipv4-cm"}, {"kpps", 12.5}) through
/// one initializer list.
class JsonScalar {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Int, Uint, Double, String };

  JsonScalar() : kind_(Kind::Null) {}
  JsonScalar(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonScalar(std::int64_t v) : kind_(Kind::Int), int_(v) {}
  JsonScalar(int v) : kind_(Kind::Int), int_(v) {}
  JsonScalar(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
  JsonScalar(unsigned v) : kind_(Kind::Uint), uint_(v) {}
  JsonScalar(double v) : kind_(Kind::Double), double_(v) {}
  JsonScalar(const char* s) : kind_(Kind::String), string_(s) {}
  JsonScalar(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  JsonScalar(std::string_view s) : kind_(Kind::String), string_(s) {}

  Kind kind() const { return kind_; }
  bool as_bool() const { return bool_; }
  std::int64_t as_int() const { return int_; }
  std::uint64_t as_uint() const { return uint_; }
  double as_double() const { return double_; }
  const std::string& as_string() const { return string_; }

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
};

/// Streaming JSON writer with automatic comma placement. Usage:
///   JsonWriter w;
///   w.begin_object().key("schema").value(1).key("rows").begin_array()
///    ...
///   std::string text = w.str();
/// The writer does not validate nesting beyond a debug-level depth
/// check; callers emit fixed schemas.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) {
    return value(std::string_view(v));
  }
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(double v);
  JsonWriter& value_null();
  JsonWriter& value(const JsonScalar& v);

  const std::string& str() const { return out_; }

  /// Escape `raw` per RFC 8259 (quotes not included).
  static std::string escape(std::string_view raw);

 private:
  void comma();

  std::string out_;
  std::vector<bool> first_;  // per open container: no element written yet
  bool after_key_ = false;
};

/// Parsed JSON document node. Numbers that look integral are kept as
/// int64 exactly (counters exceed double's 2^53 mantissa in long runs);
/// everything else becomes double.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    Null, Bool, Int, Double, String, Array, Object
  };

  /// Parse one document; throws std::runtime_error with position info on
  /// malformed input or trailing garbage.
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool as_bool() const { return bool_; }
  /// Integral value (valid for Int; truncates for Double).
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return string_; }

  // Array access.
  std::size_t size() const { return items_.size(); }
  const JsonValue& operator[](std::size_t index) const {
    return items_.at(index);
  }
  const std::vector<JsonValue>& items() const { return items_; }

  // Object access.
  bool has(const std::string& key) const {
    return members_.find(key) != members_.end();
  }
  const JsonValue& at(const std::string& key) const;
  const std::map<std::string, JsonValue>& members() const {
    return members_;
  }

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;

  friend class JsonParser;
};

}  // namespace sdmmon::obs

#endif  // SDMMON_OBS_JSON_HPP
