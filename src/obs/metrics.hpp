// Named counters, gauges, and fixed-bucket latency/size histograms
// behind a thread-safe Registry. Design constraints, in order:
//
//  1. Near-zero hot-path cost. Metric objects are plain atomics;
//     instrumented code caches `Counter*`/`Histogram*` handles at
//     attach/install time, so the per-packet path never touches the
//     registry map, a mutex, or a string.
//  2. Deterministic where possible. Counters and value histograms carry
//     no wall-clock; two engines processing the same packet sequence
//     produce identical snapshots for the deterministic subset (the
//     serial-vs-parallel diff tests assert exactly this).
//  3. Compile-out. The CMake option SDMMON_OBS (-> the public
//     SDMMON_OBS_ENABLED define) removes every instrumentation site from
//     the hot paths; the registry itself always builds so tools, benches
//     and tests work in both configurations.
//
// A registry owns its metrics for its lifetime: handles returned by
// counter()/gauge()/histogram() stay valid until the Registry is
// destroyed, and re-registering a name returns the same object.
#ifndef SDMMON_OBS_METRICS_HPP
#define SDMMON_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/journal.hpp"

namespace sdmmon::obs {

/// Monotonically increasing counter (relaxed atomics; exact totals).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins signed level (queue depths, healthy-core counts).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative integer samples. Buckets are
/// defined by ascending inclusive upper bounds; a final overflow bucket
/// (+inf) is implicit. record(v) lands in the first bucket with
/// v <= bound. Also tracks count/sum/min/max exactly.
class Histogram {
 public:
  explicit Histogram(std::span<const std::uint64_t> upper_bounds);

  void record(std::uint64_t value);

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  std::size_t num_buckets() const { return buckets_.size(); }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Valid only when count() > 0.
  std::uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 (last = +inf)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // valid when count > 0
  std::uint64_t max = 0;
};

/// Point-in-time copy of a whole registry, cheap to compare in tests.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::vector<Event> events;
  std::uint64_t events_recorded = 0;
  std::uint64_t events_evicted = 0;
};

class Registry {
 public:
  explicit Registry(std::size_t journal_capacity = 1024);

  /// Find-or-create. Returned references remain valid for the registry's
  /// lifetime; concurrent callers registering the same name race safely
  /// and observe the same object.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is consulted only on first registration.
  Histogram& histogram(std::string_view name,
                       std::span<const std::uint64_t> upper_bounds);

  EventJournal& journal() { return journal_; }
  const EventJournal& journal() const { return journal_; }

  /// Histogram-sampling period hint for instrumented subsystems: attach
  /// points read it once and record every Nth sample per site. Counters
  /// are never sampled. Must be >= 1.
  void set_sample_period(std::uint32_t period);
  std::uint32_t sample_period() const {
    return sample_period_.load(std::memory_order_relaxed);
  }

  Snapshot snapshot() const;
  /// The `metrics snapshot` JSON document (schema in docs/PROTOCOL.md,
  /// reading guide in docs/OBSERVABILITY.md).
  std::string snapshot_json() const;

  /// Process-wide default registry (tools / ad-hoc instrumentation).
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  EventJournal journal_;
  std::atomic<std::uint32_t> sample_period_{1};
};

/// Canonical bucket edges, so the same quantity is bucketed identically
/// everywhere it is recorded.
std::span<const std::uint64_t> instruction_buckets();  // per-packet instrs
std::span<const std::uint64_t> width_buckets();        // NDFA set widths
std::span<const std::uint64_t> depth_buckets();        // queue/batch depths
std::span<const std::uint64_t> latency_ns_buckets();   // wall-clock ns

}  // namespace sdmmon::obs

#endif  // SDMMON_OBS_METRICS_HPP
