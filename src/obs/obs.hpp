// Umbrella header for the observability layer, plus the compile-time
// switch. Build with -DSDMMON_OBS=OFF (CMake option) to compile every
// hot-path instrumentation site out of np/sdmmon; the registry, journal
// and JSON machinery remain available either way so tools and benches
// link identically in both configurations.
//
// Instrumented code follows one pattern:
//
//   #if SDMMON_OBS_ENABLED
//     if (obs_ != nullptr) obs_->on_commit(result);   // cached handles
//   #endif
//
// i.e. a compile-time gate around a single null check around atomics on
// cached pointers -- no strings, no locks, no registry lookups on the
// packet path. docs/OBSERVABILITY.md measures the cost of each layer.
#ifndef SDMMON_OBS_OBS_HPP
#define SDMMON_OBS_OBS_HPP

// CMake normally supplies this (PUBLIC on sdmmon_obs); default ON so
// out-of-build-system consumers get instrumentation.
#ifndef SDMMON_OBS_ENABLED
#define SDMMON_OBS_ENABLED 1
#endif

#include <chrono>

#include "obs/journal.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace sdmmon::obs {

/// Records elapsed wall-clock nanoseconds into a histogram on
/// destruction. Pass nullptr to make it a no-op (the start timestamp is
/// still taken; only use on cold paths like reinstalls).
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(Histogram* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerNs() {
    if (sink_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sdmmon::obs

#endif  // SDMMON_OBS_OBS_HPP
