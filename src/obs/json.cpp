#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sdmmon::obs {

// ---------------------------------------------------------------- writer

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::value(const JsonScalar& v) {
  switch (v.kind()) {
    case JsonScalar::Kind::Null: return value_null();
    case JsonScalar::Kind::Bool: return value(v.as_bool());
    case JsonScalar::Kind::Int: return value(v.as_int());
    case JsonScalar::Kind::Uint: return value(v.as_uint());
    case JsonScalar::Kind::Double: return value(v.as_double());
    case JsonScalar::Kind::String:
      return value(std::string_view(v.as_string()));
  }
  return *this;
}

// ---------------------------------------------------------------- parser



class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document();

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value();
  std::string parse_string();
  JsonValue parse_number();

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonParser::parse_document() {
  skip_ws();
  JsonValue v = parse_value();
  skip_ws();
  if (pos_ != text_.size()) fail("trailing characters");
  return v;
}

std::string JsonParser::parse_string() {
  expect('"');
  std::string out;
  for (;;) {
    if (pos_ >= text_.size()) fail("unterminated string");
    char c = text_[pos_++];
    if (c == '"') return out;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos_ >= text_.size()) fail("unterminated escape");
    char e = text_[pos_++];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = text_[pos_++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else fail("bad hex digit in \\u escape");
        }
        // Minimal UTF-8 encoding (no surrogate-pair handling; our
        // emitters only escape control characters).
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default: fail("unknown escape");
    }
  }
}

JsonValue JsonParser::parse_number() {
  const std::size_t start = pos_;
  if (peek() == '-') ++pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
          text_[pos_] == '+' || text_[pos_] == '-')) {
    ++pos_;
  }
  std::string_view lexeme = text_.substr(start, pos_ - start);
  JsonValue v;
  const bool integral =
      lexeme.find('.') == std::string_view::npos &&
      lexeme.find('e') == std::string_view::npos &&
      lexeme.find('E') == std::string_view::npos;
  if (integral) {
    std::int64_t i = 0;
    auto [ptr, ec] =
        std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), i);
    if (ec == std::errc() && ptr == lexeme.data() + lexeme.size()) {
      v.kind_ = JsonValue::Kind::Int;
      v.int_ = i;
      v.double_ = static_cast<double>(i);
      return v;
    }
  }
  double d = 0;
  auto [ptr, ec] =
      std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), d);
  if (ec != std::errc() || ptr != lexeme.data() + lexeme.size()) {
    fail("malformed number");
  }
  v.kind_ = JsonValue::Kind::Double;
  v.double_ = d;
  v.int_ = static_cast<std::int64_t>(d);
  return v;
}

JsonValue JsonParser::parse_value() {
  skip_ws();
  char c = peek();
  if (c == '{') {
    ++pos_;
    JsonValue v;
    v.kind_ = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }
  if (c == '[') {
    ++pos_;
    JsonValue v;
    v.kind_ = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }
  if (c == '"') {
    JsonValue v;
    v.kind_ = JsonValue::Kind::String;
    v.string_ = parse_string();
    return v;
  }
  if (consume_literal("true")) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::Bool;
    v.bool_ = true;
    return v;
  }
  if (consume_literal("false")) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::Bool;
    return v;
  }
  if (consume_literal("null")) return JsonValue();
  if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
    return parse_number();
  }
  fail("unexpected character");
}



JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

std::int64_t JsonValue::as_int() const {
  return kind_ == Kind::Double ? static_cast<std::int64_t>(double_) : int_;
}

double JsonValue::as_double() const {
  return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  auto it = members_.find(key);
  if (it == members_.end()) {
    throw std::runtime_error("json: missing key '" + key + "'");
  }
  return it->second;
}

}  // namespace sdmmon::obs
