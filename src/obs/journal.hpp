// Bounded structured event journal: the "flight recorder" of the
// observability layer. Hot paths append fixed-size Event records
// (install / reinstall / rollback / quarantine / attack detection ...)
// with an engine-cycle timestamp and core/device ids; when the ring is
// full the oldest event is evicted, so a long-running engine keeps the
// most recent history at O(capacity) memory. Thread-safe: campaign code
// and engine threads may record concurrently.
#ifndef SDMMON_OBS_JOURNAL_HPP
#define SDMMON_OBS_JOURNAL_HPP

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace sdmmon::obs {

enum class EventKind : std::uint8_t {
  Install,          // configuration installed (core == kAllCores for all)
  Reinstall,        // recovery re-imaged a core from last-good
  Rollback,         // parallel engine rolled back speculative execution
  Quarantine,       // recovery quarantined a core
  Release,          // operator released a core back to service
  Offline,          // core administratively taken offline
  Online,           // core administratively restored
  AttackDetected,   // monitor mismatch on a packet
  Trap,             // core trap (fault/overflow/watchdog) on a packet
  CampaignFailure,  // fleet campaign gave up on a device
  RolloutWave,      // staged rollout opened a wave (device = wave index)
  RolloutHalt,      // halt controller froze a rollout (arg = HaltReason)
  RolloutRollback,  // post-halt rollback finished (arg = devices rolled)
  RpcSessionOpened, // control-plane server accepted a session (device =
                    // session id)
  RpcSessionClosed, // session ended (arg = requests served)
  RpcRejected,      // server refused a request or frame (arg = reason:
                    // RpcErrorCode, or 100 + FrameError for wire damage)
};

const char* event_kind_name(EventKind kind);

/// Sentinel core id meaning "every core" (fleet-wide installs).
inline constexpr std::uint32_t kAllCores = 0xFFFFFFFFu;

/// One journal record. `cycle` is the emitting subsystem's logical clock
/// -- engines stamp the number of packets committed so far, fleet
/// campaigns the cumulative install-attempt count -- so replaying a
/// deterministic workload yields an identical event stream. `arg` is a
/// kind-specific detail (see docs/OBSERVABILITY.md for the schema).
struct Event {
  EventKind kind = EventKind::Install;
  std::uint64_t cycle = 0;
  std::uint32_t core = 0;
  std::uint32_t device = 0;
  std::uint64_t arg = 0;

  bool operator==(const Event&) const = default;
};

class EventJournal {
 public:
  explicit EventJournal(std::size_t capacity = 1024);

  void record(const Event& event);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Total events ever recorded (including evicted ones).
  std::uint64_t recorded() const;
  /// Events that were pushed out of the bounded ring.
  std::uint64_t evicted() const;

  /// Copy of the retained events, oldest first.
  std::vector<Event> events() const;

  /// Atomic (single-lock) copy of the retained events plus the lifetime
  /// recorded count, for cursor-based streaming readers: the index of
  /// the first returned event is exactly `recorded - events.size()`.
  std::vector<Event> events_and_recorded(std::uint64_t& recorded) const;

  void clear();

  /// Serialize the retained events as a JSON array (oldest first).
  void append_json(JsonWriter& writer) const;

 private:
  mutable std::mutex mu_;
  std::vector<Event> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace sdmmon::obs

#endif  // SDMMON_OBS_JOURNAL_HPP
