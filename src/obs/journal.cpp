#include "obs/journal.hpp"

#include <algorithm>

namespace sdmmon::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Install: return "install";
    case EventKind::Reinstall: return "reinstall";
    case EventKind::Rollback: return "rollback";
    case EventKind::Quarantine: return "quarantine";
    case EventKind::Release: return "release";
    case EventKind::Offline: return "offline";
    case EventKind::Online: return "online";
    case EventKind::AttackDetected: return "attack-detected";
    case EventKind::Trap: return "trap";
    case EventKind::CampaignFailure: return "campaign-failure";
    case EventKind::RolloutWave: return "rollout-wave";
    case EventKind::RolloutHalt: return "rollout-halt";
    case EventKind::RolloutRollback: return "rollout-rollback";
    case EventKind::RpcSessionOpened: return "rpc-session-opened";
    case EventKind::RpcSessionClosed: return "rpc-session-closed";
    case EventKind::RpcRejected: return "rpc-rejected";
  }
  return "?";
}

EventJournal::EventJournal(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.resize(capacity_);
}

void EventJournal::record(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ == capacity_) {
    // Evict the oldest: overwrite its slot and advance the head.
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
  } else {
    ring_[(head_ + size_) % capacity_] = event;
    ++size_;
  }
  ++recorded_;
}

std::size_t EventJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

std::uint64_t EventJournal::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t EventJournal::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - size_;
}

std::vector<Event> EventJournal::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

std::vector<Event> EventJournal::events_and_recorded(
    std::uint64_t& recorded) const {
  std::lock_guard<std::mutex> lock(mu_);
  recorded = recorded_;
  std::vector<Event> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

void EventJournal::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  size_ = 0;
  // recorded_ is a lifetime total and survives clear().
}

void EventJournal::append_json(JsonWriter& writer) const {
  const std::vector<Event> copy = events();
  writer.begin_array();
  for (const Event& e : copy) {
    writer.begin_object();
    writer.key("kind").value(event_kind_name(e.kind));
    writer.key("cycle").value(e.cycle);
    writer.key("core").value(e.core);
    writer.key("device").value(e.device);
    writer.key("arg").value(e.arg);
    writer.end_object();
  }
  writer.end_array();
}

}  // namespace sdmmon::obs
