#include "monitor/graph.hpp"

#include "monitor/graph_codec.hpp"

namespace sdmmon::monitor {

std::size_t MonitoringGraph::size_bits() const {
  if (nodes_.empty()) return 0;
  return encoded_graph_bits(*this);
}

util::Bytes MonitoringGraph::serialize() const {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(hash_width_));
  w.u32(text_base_);
  w.u32(entry_index_);
  w.u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const GraphNode& node : nodes_) {
    w.u8(node.hash);
    w.u8(node.can_exit ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(node.successors.size()));
    for (std::uint32_t succ : node.successors) w.u32(succ);
  }
  return w.take();
}

MonitoringGraph MonitoringGraph::deserialize(
    std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  const int width = r.u8();
  const std::uint32_t text_base = r.u32();
  const std::uint32_t entry = r.u32();
  const std::uint32_t count = r.u32();
  // Bound claimed counts by the bytes actually present (each node needs at
  // least 6 bytes) so hostile inputs cannot force huge allocations.
  if (count > r.remaining() / 6) {
    throw util::DecodeError("monitoring graph: node count exceeds input");
  }
  std::vector<GraphNode> nodes;
  nodes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    GraphNode node;
    node.hash = r.u8();
    node.can_exit = r.u8() != 0;
    const std::uint32_t n_succ = r.u32();
    if (n_succ > r.remaining() / 4) {
      throw util::DecodeError("monitoring graph: edge count exceeds input");
    }
    node.successors.reserve(n_succ);
    for (std::uint32_t s = 0; s < n_succ; ++s) {
      node.successors.push_back(r.u32());
    }
    nodes.push_back(std::move(node));
  }
  return MonitoringGraph(width, text_base, entry, std::move(nodes));
}

}  // namespace sdmmon::monitor
