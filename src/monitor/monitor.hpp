// Runtime hardware monitor (paper Figure 1, right). Co-located with a
// core, it receives the w-bit hash of every retired instruction and walks
// the monitoring graph. Because branches admit two successors and indirect
// jumps several, the monitor tracks a *set* of possible positions (an NFA
// over graph nodes). An instruction whose hash matches no tracked node is
// an attack: the monitor raises a flag and the system resets the core and
// drops the packet.
//
// This is the compiled hot path: the monitor walks an immutable
// CompiledGraph artifact (monitor/compiled_graph.hpp) shared across all
// cores of an MPSoC. The artifact pre-buckets every node's successor
// slice by the 2^w hash values, so after a step that matched exactly one
// node u the tracked set IS u's compiled successor table: the next
// report h matches precisely the slice bucket(u, h), found with one
// offset lookup -- no filtering, no copying, nothing allocated. Only
// when a report matches several tracked nodes at once does the monitor
// materialize the successor union into a flat buffer, deduplicated with
// an epoch-stamped membership array (O(1) per successor, bumping the
// epoch invalidates all stamps at once). Mismatch, exit, and
// trap-terminal detection all fall out of the single match pass (no
// second rescan). No per-instruction allocation or sort anywhere. The
// original vector-filter walker survives as ReferenceMonitor
// (monitor/reference_monitor.hpp), the differential-testing oracle.
#ifndef SDMMON_MONITOR_MONITOR_HPP
#define SDMMON_MONITOR_MONITOR_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "monitor/compiled_graph.hpp"
#include "monitor/graph.hpp"
#include "monitor/hash.hpp"

namespace sdmmon::monitor {

enum class Verdict : std::uint8_t {
  Ok,        // hash matched a tracked graph node
  Mismatch,  // attack detected: no tracked node expects this hash
};

/// Cumulative statistics for evaluation.
struct MonitorStats {
  std::uint64_t instructions_checked = 0;
  std::uint64_t mismatches = 0;
  /// Packets the monitor was armed for via reset(). Install-time
  /// re-arming is deliberately NOT counted: an install is not a packet.
  std::uint64_t packets_monitored = 0;
  /// Sum of tracked-state-set sizes, for average ambiguity reporting.
  std::uint64_t state_size_accum = 0;

  double average_ambiguity() const {
    return instructions_checked == 0
               ? 0.0
               : static_cast<double>(state_size_accum) /
                     static_cast<double>(instructions_checked);
  }
};

class HardwareMonitor {
 public:
  /// Preferred: walk an already-compiled shared artifact (install paths
  /// compile once per MPSoC and hand every core the same pointer).
  HardwareMonitor(std::shared_ptr<const CompiledGraph> graph,
                  std::unique_ptr<InstructionHash> hash);

  /// Convenience: compile a wire-format graph privately (tests, tools,
  /// single-monitor setups).
  HardwareMonitor(MonitoringGraph graph, std::unique_ptr<InstructionHash> hash);

  /// Arm for a new packet: state set = {entry node}. Counts one
  /// monitored packet; install-time re-arming does not (see reset()
  /// vs install() in MonitorStats).
  void reset();

  /// Install a new (graph, hash) pair -- the dynamic reprogramming step
  /// SDMMon secures. Re-arms monitoring state without counting a packet;
  /// cumulative stats persist across installs.
  void install(std::shared_ptr<const CompiledGraph> graph,
               std::unique_ptr<InstructionHash> hash);
  void install(MonitoringGraph graph, std::unique_ptr<InstructionHash> hash);

  /// Feed the raw word of a retired instruction. The monitor applies its
  /// own hash function (the core reports through the parameterizable hash
  /// unit in hardware; here the unit is owned by the monitor object).
  Verdict on_instruction(std::uint32_t word);

  /// Feed an already-hashed value (used by attack simulations that probe
  /// the monitor without knowing the parameter). Inline: this runs once
  /// per retired instruction and is the hottest loop in the system.
  Verdict on_hashed(std::uint8_t hashed) {
    ++stats_.instructions_checked;
    stats_.state_size_accum += live_count_;
    if (live_count_ > peak_state_size_) peak_state_size_ = live_count_;

    if (attack_flagged_) [[unlikely]] return Verdict::Mismatch;

    if (slice_node_ != kNoSlice && hashed < bucket_count_) [[likely]] {
      // Tracked set == successors(slice_node_): the nodes matching
      // `hashed` are exactly the precomputed bucket (node, hashed), and
      // the fast table resolves the dominant exactly-one-match step
      // with a single load.
      const std::uint32_t v =
          fast_next_[(slice_node_ << hash_shift_) | hashed];
      if (v < CompiledGraph::kFastMulti) [[likely]] {
        // One matched node: its compiled successor table becomes the
        // tracked set verbatim -- an O(1) pointer step.
        slice_node_ = v;
        live_count_ = succ_count_[v];
        exit_allowed_ = node_exit_[v] != 0;
        return Verdict::Ok;
      }
      if (v == CompiledGraph::kFastEmpty) return flag_mismatch();
      advance_matched(graph_->bucket(slice_node_, hashed));
      return Verdict::Ok;
    }
    if (slice_node_ != kNoSlice) return flag_mismatch();  // report >= 2^w
    return step_list(hashed);
  }

  /// Batch-granular feed: consume `n` precomputed hashes (one fused
  /// run's or one trace's slice of a compiled hash lane) in order, with
  /// cumulative stats, peak-width tracking, and verdicts bit-identical
  /// to n successive on_hashed() calls. When `stop_on_mismatch` is set
  /// the walk stops at the first Mismatch and returns its index (the
  /// count of Ok hashes before it); otherwise every hash is consumed --
  /// mismatches latch the attack flag exactly like on_hashed -- and n
  /// is returned. The steady state (slice form, single-successor fast
  /// table hits) runs as CompiledGraph::batch_step, a graph-resident
  /// tight loop over the flat fast_next table with deferred stat
  /// accumulation. Each hash the fast loop cannot take (multi-match,
  /// mismatch, list form, out-of-range report, latched attack) replays
  /// through the exact per-hash reference path -- ONE hash at a time,
  /// after which the loop re-enters batch_step, because a single-match
  /// list step re-promotes the tracked set to slice form. So one
  /// mid-batch multi-match costs one slow step, not the whole tail.
  std::size_t advance(const std::uint8_t* hashes, std::size_t n,
                      bool stop_on_mismatch) {
    std::size_t i = 0;
    while (i < n) {
      if (!attack_flagged_ && slice_node_ != kNoSlice) {
        const CompiledGraph::BatchStep step = CompiledGraph::batch_step(
            fast_next_, succ_count_, hash_shift_, bucket_count_, slice_node_,
            live_count_, peak_state_size_, hashes + i, n - i);
        stats_.instructions_checked += step.consumed;
        stats_.state_size_accum += step.width_accum;
        peak_state_size_ = step.peak;
        if (step.consumed != 0) {
          slice_node_ = step.node;
          live_count_ = step.live;
          exit_allowed_ = node_exit_[step.node] != 0;
        }
        i += step.consumed;
        if (i == n) return n;
      }
      if (on_hashed(hashes[i]) == Verdict::Mismatch && stop_on_mismatch) {
        return i;
      }
      ++i;
    }
    return n;
  }

  /// True if the handler may legitimately finish now (the last matched
  /// instruction was exit-capable, or nothing executed yet).
  bool exit_allowed() const { return exit_allowed_; }

  /// True once a mismatch has been flagged; cleared by reset().
  bool attack_flagged() const { return attack_flagged_; }

  std::size_t state_size() const { return live_count_; }
  /// Largest tracked-state-set size observed since the last reset() --
  /// the per-packet peak NFA width (comparator pressure); feeds the
  /// observability layer's np.core.ndfa_width histogram.
  std::size_t peak_state_size() const { return peak_state_size_; }
  /// Tracked node indices, ascending (materialized sorted copy; for
  /// differential state compares, not the hot path).
  std::vector<std::uint32_t> state_nodes() const;
  const MonitorStats& stats() const { return stats_; }
  /// Wire-format view of the installed graph (retained by the artifact).
  const MonitoringGraph& graph() const { return graph_->source(); }
  /// The shared compiled artifact (pointer identity across cores is the
  /// install-sharing invariant tests assert).
  const std::shared_ptr<const CompiledGraph>& compiled() const {
    return graph_;
  }
  const InstructionHash& hash() const { return *hash_; }

 private:
  /// Sentinel for "the tracked set is materialized in cur_, not
  /// represented as a compiled successor slice".
  static constexpr std::uint32_t kNoSlice = 0xFFFFFFFFu;

  /// Size per-graph state (state buffers, epoch stamps) after an
  /// artifact swap, then re-arm.
  void rebind();
  /// Re-arm to {entry} without touching cumulative stats.
  void rearm();
  /// Latch the attack flag (cold path, shared by both representations).
  Verdict flag_mismatch();
  /// Several tracked nodes matched at once (slice representation):
  /// materialize their deduped successor union into cur_.
  void advance_matched(std::span<const std::uint32_t> matched);
  /// Match+advance over the materialized list representation.
  Verdict step_list(std::uint8_t hashed);

  std::shared_ptr<const CompiledGraph> graph_;
  std::unique_ptr<InstructionHash> hash_;

  // Tracked-state set, in one of two forms:
  //  * slice form (slice_node_ != kNoSlice): the set is
  //    graph_->successors(slice_node_), held by reference into the
  //    immutable artifact -- nothing is copied. Entered whenever a step
  //    matches exactly one node; this is the steady state on real
  //    instruction streams.
  //  * list form (slice_node_ == kNoSlice): cur_[0..live_count_) holds
  //    the node indices, duplicate-free. Entered at rearm ({entry}) and
  //    when a step matches several tracked nodes at once.
  // Buffers are pre-sized to the graph's node count at install (the set
  // can never exceed it), so steady-state operation never allocates.
  // The epoch-stamp array dedups successor unions on multi-match steps
  // in O(1) per node -- bumping epoch_ invalidates every stamp at once.
  std::uint32_t slice_node_ = kNoSlice;
  std::size_t live_count_ = 0;  // tracked-set size in either form
  // Raw views of the shared artifact's flat tables, cached at rebind()
  // so the per-instruction step dereferences no smart pointer.
  const std::uint32_t* fast_next_ = nullptr;
  const std::uint32_t* succ_count_ = nullptr;
  const std::uint8_t* node_exit_ = nullptr;
  std::uint32_t bucket_count_ = 0;  // 2^w
  std::uint32_t hash_shift_ = 0;    // w
  std::vector<std::uint32_t> cur_, nxt_;
  std::vector<std::uint64_t> stamps_;  // per-node dedup epoch stamps
  std::uint64_t epoch_ = 0;

  bool exit_allowed_ = true;
  bool attack_flagged_ = false;
  std::size_t peak_state_size_ = 0;
  MonitorStats stats_;
};

}  // namespace sdmmon::monitor

#endif  // SDMMON_MONITOR_MONITOR_HPP
