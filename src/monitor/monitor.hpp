// Runtime hardware monitor (paper Figure 1, right). Co-located with a
// core, it receives the w-bit hash of every retired instruction and walks
// the monitoring graph. Because branches admit two successors and indirect
// jumps several, the monitor tracks a *set* of possible positions (an NFA
// over graph nodes). An instruction whose hash matches no tracked node is
// an attack: the monitor raises a flag and the system resets the core and
// drops the packet.
#ifndef SDMMON_MONITOR_MONITOR_HPP
#define SDMMON_MONITOR_MONITOR_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "monitor/graph.hpp"
#include "monitor/hash.hpp"

namespace sdmmon::monitor {

enum class Verdict : std::uint8_t {
  Ok,        // hash matched a tracked graph node
  Mismatch,  // attack detected: no tracked node expects this hash
};

/// Cumulative statistics for evaluation.
struct MonitorStats {
  std::uint64_t instructions_checked = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t packets_monitored = 0;
  /// Sum of tracked-state-set sizes, for average ambiguity reporting.
  std::uint64_t state_size_accum = 0;

  double average_ambiguity() const {
    return instructions_checked == 0
               ? 0.0
               : static_cast<double>(state_size_accum) /
                     static_cast<double>(instructions_checked);
  }
};

class HardwareMonitor {
 public:
  HardwareMonitor(MonitoringGraph graph, std::unique_ptr<InstructionHash> hash);

  /// Arm for a new packet: state set = {entry node}.
  void reset();

  /// Install a new (graph, hash) pair -- the dynamic reprogramming step
  /// SDMMon secures. Resets monitoring state.
  void install(MonitoringGraph graph, std::unique_ptr<InstructionHash> hash);

  /// Feed the raw word of a retired instruction. The monitor applies its
  /// own hash function (the core reports through the parameterizable hash
  /// unit in hardware; here the unit is owned by the monitor object).
  Verdict on_instruction(std::uint32_t word);

  /// Feed an already-hashed value (used by attack simulations that probe
  /// the monitor without knowing the parameter).
  Verdict on_hashed(std::uint8_t hashed);

  /// True if the handler may legitimately finish now (the last matched
  /// instruction was exit-capable, or nothing executed yet).
  bool exit_allowed() const { return exit_allowed_; }

  /// True once a mismatch has been flagged; cleared by reset().
  bool attack_flagged() const { return attack_flagged_; }

  std::size_t state_size() const { return state_.size(); }
  /// Largest tracked-state-set size observed since the last reset() --
  /// the per-packet peak NFA width (comparator pressure); feeds the
  /// observability layer's np.core.ndfa_width histogram.
  std::size_t peak_state_size() const { return peak_state_size_; }
  const MonitorStats& stats() const { return stats_; }
  const MonitoringGraph& graph() const { return graph_; }
  const InstructionHash& hash() const { return *hash_; }

 private:
  MonitoringGraph graph_;
  std::unique_ptr<InstructionHash> hash_;
  std::vector<std::uint32_t> state_;       // tracked node indices (sorted)
  std::vector<std::uint32_t> scratch_;     // reused successor buffer
  bool exit_allowed_ = true;
  bool attack_flagged_ = false;
  std::size_t peak_state_size_ = 0;
  MonitorStats stats_;
};

}  // namespace sdmmon::monitor

#endif  // SDMMON_MONITOR_MONITOR_HPP
