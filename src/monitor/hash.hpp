// Instruction-word hash functions for the hardware monitor.
//
// The paper's SDMMon hash (Section 3.2, Figure 4) is a Merkle tree of
// 8-to-4-bit compression functions: leaves pair 4 bits of a secret 32-bit
// parameter with 4 bits of the instruction word; inner nodes combine two
// 4-bit values; the root emits the 4-bit hash stored per instruction in
// the monitoring graph. The compression function used in the prototype is
// the 4-bit arithmetic sum of both inputs. A non-parameterizable bitcount
// (population count) hash is the paper's comparison baseline (Table 3).
//
// Both hashes are generalized to width w in {1,2,4,8} bits for the hash-
// width ablation; the paper's configuration is w = 4.
#ifndef SDMMON_MONITOR_HASH_HPP
#define SDMMON_MONITOR_HASH_HPP

#include <cstdint>
#include <memory>
#include <string>

namespace sdmmon::monitor {

/// Interface of a per-instruction hash: 32-bit word -> w-bit value.
class InstructionHash {
 public:
  virtual ~InstructionHash() = default;

  /// Hash of one instruction word; result fits in width() bits.
  virtual std::uint8_t hash(std::uint32_t word) const = 0;

  /// Output width in bits (1..8).
  virtual int width() const = 0;

  virtual std::string name() const = 0;

  /// Clone (monitor instances own their hash).
  virtual std::unique_ptr<InstructionHash> clone() const = 0;

  std::uint8_t mask() const {
    return static_cast<std::uint8_t>((1u << width()) - 1);
  }
};

/// Compression function used at every tree node.
enum class Compression : std::uint8_t {
  /// The prototype's choice: (a + b) mod 2^w. Cheap, but *additive in the
  /// parameter*: two words that collide under one parameter collide under
  /// every parameter, so hash collisions transfer across routers. Our
  /// fleet experiment quantifies this weakness.
  ArithmeticSum,
  /// (a + b) passed through a fixed 4-bit S-box (PRESENT cipher S-box).
  /// Nonlinear in the parameter, restoring SR2's diversity guarantee.
  /// Defined for widths 4 and 8 (nibble-wise); narrower widths fall back
  /// to ArithmeticSum.
  SboxSum,
};

const char* compression_name(Compression compression);

/// Paper's parameterizable Merkle-tree hash keyed by a 32-bit parameter.
class MerkleTreeHash final : public InstructionHash {
 public:
  explicit MerkleTreeHash(std::uint32_t parameter, int width_bits = 4,
                          Compression compression = Compression::ArithmeticSum);

  std::uint8_t hash(std::uint32_t word) const override;
  int width() const override { return width_; }
  std::string name() const override;
  std::unique_ptr<InstructionHash> clone() const override;

  std::uint32_t parameter() const { return parameter_; }
  Compression compression() const { return compression_; }

  /// One tree node: compress two w-bit inputs to w bits. Exposed for the
  /// resource model and for tests.
  std::uint8_t compress(std::uint8_t a, std::uint8_t b) const;

  /// Number of compression nodes in the tree (leaves + inner).
  int node_count() const;

 private:
  std::uint32_t parameter_;
  int width_;
  Compression compression_;
};

/// Baseline: count of set bits in the word, truncated to w bits. Not
/// parameterizable -- identical on every router (the homogeneity risk).
class BitcountHash final : public InstructionHash {
 public:
  explicit BitcountHash(int width_bits = 4);

  std::uint8_t hash(std::uint32_t word) const override;
  int width() const override { return width_; }
  std::string name() const override { return "bitcount"; }
  std::unique_ptr<InstructionHash> clone() const override;

 private:
  int width_;
};

}  // namespace sdmmon::monitor

#endif  // SDMMON_MONITOR_HASH_HPP
