// Compact bitstream encoding of the monitoring graph -- the
// representation the paper's monitor memory actually stores ("monitor
// graphs with small hash values can be represented very compactly and
// processed with a single memory access", Sec 3.2).
//
// Per node layout:
//   hash            w bits
//   exit flag       1 bit
//   shape tag       2 bits:
//     0 = terminal (no successors)
//     1 = sequential only        {i+1}
//     2 = sequential + 1 edge    {i+1, target}        + index
//     3 = explicit list          count (8 bits) + count * index
//   explicit edge targets are ceil(log2(N)) bits each.
//
// MonitoringGraph::size_bits() is defined as the exact bit length this
// codec produces (asserted by tests).
#ifndef SDMMON_MONITOR_GRAPH_CODEC_HPP
#define SDMMON_MONITOR_GRAPH_CODEC_HPP

#include "monitor/graph.hpp"

namespace sdmmon::monitor {

/// Append-only bit stream (MSB-first within bytes).
class BitWriter {
 public:
  void write(std::uint32_t value, int bits);
  std::size_t bit_count() const { return bits_; }
  const util::Bytes& bytes() const { return buf_; }

 private:
  util::Bytes buf_;
  std::size_t bits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}
  /// Throws util::DecodeError past the end.
  std::uint32_t read(int bits);
  std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Encode the graph body into the compact bitstream (header: width, base,
/// entry, node count are carried alongside as plain fields).
struct EncodedGraph {
  std::uint8_t hash_width = 4;
  std::uint32_t text_base = 0;
  std::uint32_t entry_index = 0;
  std::uint32_t node_count = 0;
  util::Bytes bits;           // packed node stream
  std::size_t bit_length = 0; // exact number of payload bits

  util::Bytes serialize() const;
  static EncodedGraph deserialize(std::span<const std::uint8_t> data);
};

/// Compact-encode; throws std::invalid_argument if a node's successor set
/// cannot be represented (more than 255 explicit edges).
EncodedGraph encode_graph(const MonitoringGraph& graph);

/// Decode back to the full in-memory form.
MonitoringGraph decode_graph(const EncodedGraph& encoded);

/// Exact payload size in bits of the compact encoding (what the monitor
/// memory must provision for this graph).
std::size_t encoded_graph_bits(const MonitoringGraph& graph);

}  // namespace sdmmon::monitor

#endif  // SDMMON_MONITOR_GRAPH_CODEC_HPP
