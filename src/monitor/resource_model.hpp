// Structural FPGA resource model -- the substitution for the paper's
// Quartus synthesis runs on the Altera DE4 (Stratix IV EP4SGX230).
//
// Table 3 (hash implementation cost) is modeled structurally:
//   * bitcount: a population-count compressor tree over the 32 input bits
//     plus the final output register. LUTs = bits + ceil(bits/8) + 1.
//   * Merkle tree with modular-sum compression: synthesis collapses the
//     tree into a w-bit modular sum of the 32/w instruction chunks (the
//     registered parameter contributes its own chunks). On fracturable
//     6-input ALMs a 3:1 w-bit modular-sum stage packs into ~0.75*w LUTs,
//     giving LUTs = 0.75 * w * (chunks - 1). The 32-bit parameter lives in
//     monitor memory (32 memory bits), which is the paper's logic-vs-
//     memory trade-off between the two hashes.
//
// Table 1 (system-level resource use) is modeled as a component inventory:
// per-part estimates follow published sizes of the corresponding Altera/
// OpenCores IP (Nios II/f, TSE MAC, DDR2 controller, PLASMA), and one
// explicit "interconnect & glue (balance)" entry absorbs the remainder so
// inventory totals equal the published synthesis results. The preserved
// scientific claim is structural: the security control processor costs
// roughly one third of a monitored NP core.
#ifndef SDMMON_MONITOR_RESOURCE_MODEL_HPP
#define SDMMON_MONITOR_RESOURCE_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "monitor/hash.hpp"

namespace sdmmon::monitor {

struct ResourceCost {
  std::uint64_t luts = 0;
  std::uint64_t ffs = 0;
  std::uint64_t mem_bits = 0;

  ResourceCost& operator+=(const ResourceCost& rhs) {
    luts += rhs.luts;
    ffs += rhs.ffs;
    mem_bits += rhs.mem_bits;
    return *this;
  }
  friend ResourceCost operator+(ResourceCost a, const ResourceCost& b) {
    return a += b;
  }
  bool operator==(const ResourceCost& rhs) const = default;
};

struct ComponentCost {
  std::string name;
  ResourceCost cost;
};

/// Stratix IV EP4SGX230 device capacity (Table 1 "Available on FPGA").
constexpr ResourceCost kStratixIvCapacity{182'400, 182'400, 14'625'792};

// Published Table 1 rows, used to calibrate inventory balances.
constexpr ResourceCost kPaperControlProcessor{13'477, 16'899, 798'976};
constexpr ResourceCost kPaperNpCoreWithMonitor{41'735, 40'590, 2'883'088};

// Published Table 3 rows.
constexpr ResourceCost kPaperBitcountHash{37, 4, 0};
constexpr ResourceCost kPaperMerkleHash{21, 4, 32};

/// Structural cost of a population-count hash over `input_bits` inputs.
ResourceCost bitcount_hash_cost(int input_bits = 32, int width_bits = 4);

/// Structural cost of the Merkle-tree hash at width w.
ResourceCost merkle_hash_cost(int width_bits = 4);

/// Dispatch on the runtime hash object.
ResourceCost hash_cost(const InstructionHash& hash);

/// Component inventory of the Nios II security control processor
/// (CPU, caches, Ethernet MAC, DDR2 controller, crypto buffers, glue).
std::vector<ComponentCost> control_processor_inventory();

/// Component inventory of one NP core with its hardware monitor.
/// `graph_mem_bits` sizes the monitor's graph memory; pass the monitoring
/// graph's size_bits() (the paper provisions a fixed ~2 Mbit graph store).
std::vector<ComponentCost> np_core_with_monitor_inventory(
    std::uint64_t graph_mem_bits = 2'000'000);

ResourceCost total(const std::vector<ComponentCost>& inventory);

}  // namespace sdmmon::monitor

#endif  // SDMMON_MONITOR_RESOURCE_MODEL_HPP
