#include "monitor/compiled_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sdmmon::monitor {

namespace {

[[noreturn]] void bad_graph(const std::string& what) {
  throw std::invalid_argument("CompiledGraph: " + what);
}

}  // namespace

CompiledGraph::CompiledGraph(MonitoringGraph graph)
    : source_(std::move(graph)) {
  const auto& nodes = source_.nodes();
  const std::size_t n = nodes.size();

  if (source_.hash_width() < 1 || source_.hash_width() > 8) {
    bad_graph("hash width " + std::to_string(source_.hash_width()) +
              " outside [1,8]");
  }
  if (n > 0 && source_.entry_index() >= n) {
    bad_graph("entry index " + std::to_string(source_.entry_index()) +
              " out of range for " + std::to_string(n) + " nodes");
  }
  hash_buckets_ = 1u << source_.hash_width();

  // Pass 1: validate and pack the per-node records (successor bucketing
  // in pass 2 needs every node's hash up front).
  node_hash_.resize(n);
  node_exit_.resize(n);
  bucket_population_.assign(kNumBuckets, 0);
  std::size_t total_edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const GraphNode& node = nodes[i];
    if (node.hash >= hash_buckets_) {
      bad_graph("node " + std::to_string(i) + " hash " +
                std::to_string(node.hash) + " exceeds width " +
                std::to_string(source_.hash_width()));
    }
    for (std::uint32_t succ : node.successors) {
      if (succ >= n) {
        bad_graph("node " + std::to_string(i) + " successor " +
                  std::to_string(succ) + " out of range");
      }
    }
    node_hash_[i] = node.hash;
    node_exit_[i] = node.can_exit ? 1 : 0;
    ++bucket_population_[node.hash];
    total_edges += node.successors.size();
  }

  // Pass 2: dedup each successor list, then scatter it into per-hash
  // groups via a counting sort, recording CSR bucket offsets as we go.
  // The grouping is what lets the monitor answer "which successors of u
  // match report h?" with a single precomputed slice.
  bucket_off_.resize(n * hash_buckets_ + 1);
  edges_.reserve(total_edges);
  std::vector<std::uint32_t> dedup;
  std::vector<std::uint32_t> cursor(hash_buckets_);
  for (std::size_t i = 0; i < n; ++i) {
    dedup.assign(nodes[i].successors.begin(), nodes[i].successors.end());
    std::sort(dedup.begin(), dedup.end());
    dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());

    std::fill(cursor.begin(), cursor.end(), 0);
    for (std::uint32_t succ : dedup) ++cursor[node_hash_[succ]];
    std::uint32_t running = static_cast<std::uint32_t>(edges_.size());
    for (std::uint32_t h = 0; h < hash_buckets_; ++h) {
      bucket_off_[i * hash_buckets_ + h] = running;
      running += cursor[h];
      cursor[h] = bucket_off_[i * hash_buckets_ + h];
    }
    edges_.resize(running);
    // dedup is ascending, so the stable scatter keeps every bucket
    // ascending too.
    for (std::uint32_t succ : dedup) edges_[cursor[node_hash_[succ]]++] = succ;
  }
  bucket_off_[n * hash_buckets_] = static_cast<std::uint32_t>(edges_.size());

  // Pass 3: the fast transition table. For every (node, hash) pair the
  // monitor's dominant step -- "exactly one tracked successor matches
  // the report" -- is answered by a single load; empty and multi-match
  // buckets carry sentinels that route to the generic slice paths.
  succ_count_.resize(n);
  fast_next_.resize(n * hash_buckets_);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t base = i * hash_buckets_;
    succ_count_[i] = bucket_off_[base + hash_buckets_] - bucket_off_[base];
    for (std::uint32_t h = 0; h < hash_buckets_; ++h) {
      const std::uint32_t lo = bucket_off_[base + h];
      const std::uint32_t hi = bucket_off_[base + h + 1];
      fast_next_[base + h] = (hi == lo)       ? kFastEmpty
                             : (hi - lo == 1) ? edges_[lo]
                                              : kFastMulti;
    }
  }
}

std::shared_ptr<const CompiledGraph> CompiledGraph::compile(
    MonitoringGraph graph) {
  return std::shared_ptr<const CompiledGraph>(
      new CompiledGraph(std::move(graph)));
}

std::size_t CompiledGraph::footprint_bytes() const {
  return node_hash_.size() * sizeof(std::uint8_t) +
         node_exit_.size() * sizeof(std::uint8_t) +
         bucket_off_.size() * sizeof(std::uint32_t) +
         edges_.size() * sizeof(std::uint32_t) +
         succ_count_.size() * sizeof(std::uint32_t) +
         fast_next_.size() * sizeof(std::uint32_t) +
         bucket_population_.size() * sizeof(std::uint32_t);
}

}  // namespace sdmmon::monitor
