// The original straight-from-the-paper monitoring-graph walker, retained
// verbatim as the differential-testing oracle for the compiled hot path
// (monitor/monitor.hpp). It filters a plain state vector against the
// wire-format graph's per-node successor vectors and dedups with
// sort+unique -- simple enough to audit by eye, slow enough that the
// production HardwareMonitor no longer uses it. Any divergence between
// the two walkers on any stream is a bug (tests/monitor_property_test
// fuzzes exactly this).
#ifndef SDMMON_MONITOR_REFERENCE_MONITOR_HPP
#define SDMMON_MONITOR_REFERENCE_MONITOR_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "monitor/graph.hpp"
#include "monitor/hash.hpp"
#include "monitor/monitor.hpp"  // Verdict, MonitorStats

namespace sdmmon::monitor {

class ReferenceMonitor {
 public:
  ReferenceMonitor(MonitoringGraph graph,
                   std::unique_ptr<InstructionHash> hash);

  /// Arm for a new packet: state set = {entry node}. Counts one
  /// monitored packet (install-time re-arming does not).
  void reset();

  /// Install a new (graph, hash) pair. Re-arms monitoring state without
  /// counting a packet; cumulative stats persist across installs.
  void install(MonitoringGraph graph, std::unique_ptr<InstructionHash> hash);

  Verdict on_instruction(std::uint32_t word);
  Verdict on_hashed(std::uint8_t hashed);

  bool exit_allowed() const { return exit_allowed_; }
  bool attack_flagged() const { return attack_flagged_; }

  std::size_t state_size() const { return state_.size(); }
  std::size_t peak_state_size() const { return peak_state_size_; }
  /// Tracked node indices, ascending (for differential state compares).
  const std::vector<std::uint32_t>& state_nodes() const { return state_; }
  const MonitorStats& stats() const { return stats_; }
  const MonitoringGraph& graph() const { return graph_; }
  const InstructionHash& hash() const { return *hash_; }

 private:
  void rearm();

  MonitoringGraph graph_;
  std::unique_ptr<InstructionHash> hash_;
  std::vector<std::uint32_t> state_;       // tracked node indices (sorted)
  std::vector<std::uint32_t> scratch_;     // reused successor buffer
  bool exit_allowed_ = true;
  bool attack_flagged_ = false;
  std::size_t peak_state_size_ = 0;
  MonitorStats stats_;
};

}  // namespace sdmmon::monitor

#endif  // SDMMON_MONITOR_REFERENCE_MONITOR_HPP
