// Monitoring graph: the offline-derived description of valid processor
// behavior (paper Section 2.1). One node per instruction in the binary,
// holding the w-bit hash of that instruction word and the set of nodes
// that may legally execute next. The graph -- not the binary -- is what
// the hardware monitor stores, which is why it must be compact and why
// its secure installation is the paper's core problem.
#ifndef SDMMON_MONITOR_GRAPH_HPP
#define SDMMON_MONITOR_GRAPH_HPP

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace sdmmon::monitor {

struct GraphNode {
  std::uint8_t hash = 0;                  // w-bit hash of the instruction word
  bool can_exit = false;                  // a handler return may follow
  std::vector<std::uint32_t> successors;  // node indices that may run next

  bool operator==(const GraphNode& rhs) const = default;
};

class MonitoringGraph {
 public:
  MonitoringGraph() = default;
  MonitoringGraph(int hash_width, std::uint32_t text_base,
                  std::uint32_t entry_index, std::vector<GraphNode> nodes)
      : hash_width_(hash_width),
        text_base_(text_base),
        entry_index_(entry_index),
        nodes_(std::move(nodes)) {}

  int hash_width() const { return hash_width_; }
  std::uint32_t text_base() const { return text_base_; }
  std::uint32_t entry_index() const { return entry_index_; }
  const std::vector<GraphNode>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }
  const GraphNode& node(std::uint32_t index) const { return nodes_[index]; }

  /// Exact storage footprint of the graph in monitor memory: the bit
  /// length of the compact encoding (monitor/graph_codec.hpp) -- per node
  /// a w-bit hash, 1-bit exit flag, and 2-bit successor-shape tag;
  /// sequential successors are implicit, non-sequential edges cost
  /// ceil(log2(N)) bits each.
  std::size_t size_bits() const;

  /// Wire format (shipped inside the signed install package).
  util::Bytes serialize() const;
  static MonitoringGraph deserialize(std::span<const std::uint8_t> bytes);

  bool operator==(const MonitoringGraph& rhs) const = default;

 private:
  int hash_width_ = 4;
  std::uint32_t text_base_ = 0;
  std::uint32_t entry_index_ = 0;
  std::vector<GraphNode> nodes_;
};

}  // namespace sdmmon::monitor

#endif  // SDMMON_MONITOR_GRAPH_HPP
