#include "monitor/resource_model.hpp"

#include <cmath>
#include <stdexcept>

namespace sdmmon::monitor {

ResourceCost bitcount_hash_cost(int input_bits, int width_bits) {
  // Compressor tree (one LUT per input bit across the 6:3 counter levels)
  // plus a small final adder and the registered output.
  ResourceCost cost;
  cost.luts = static_cast<std::uint64_t>(input_bits) +
              static_cast<std::uint64_t>((input_bits + 7) / 8) + 1;
  cost.ffs = static_cast<std::uint64_t>(width_bits);
  cost.mem_bits = 0;
  return cost;
}

ResourceCost merkle_hash_cost(int width_bits) {
  const int chunks = 32 / width_bits;
  ResourceCost cost;
  // 3:1 modular-sum stages pack into ~0.75*w ALUT each after collapsing
  // the tree; (chunks - 1) two-input compressions are needed.
  cost.luts = static_cast<std::uint64_t>(
      std::llround(0.75 * width_bits * (chunks - 1)));
  cost.ffs = static_cast<std::uint64_t>(width_bits);  // output register
  cost.mem_bits = 32;  // stored hash parameter
  return cost;
}

ResourceCost hash_cost(const InstructionHash& hash) {
  if (dynamic_cast<const MerkleTreeHash*>(&hash) != nullptr) {
    return merkle_hash_cost(hash.width());
  }
  if (dynamic_cast<const BitcountHash*>(&hash) != nullptr) {
    return bitcount_hash_cost(32, hash.width());
  }
  throw std::invalid_argument("no resource model for hash " + hash.name());
}

namespace {

/// Append a balance entry so the inventory total matches `target` exactly;
/// the balance models interconnect, glue logic, and synthesis overhead
/// that per-IP estimates cannot capture.
void add_balance(std::vector<ComponentCost>& inventory,
                 const ResourceCost& target) {
  ResourceCost sum = total(inventory);
  ResourceCost balance;
  balance.luts = target.luts > sum.luts ? target.luts - sum.luts : 0;
  balance.ffs = target.ffs > sum.ffs ? target.ffs - sum.ffs : 0;
  balance.mem_bits =
      target.mem_bits > sum.mem_bits ? target.mem_bits - sum.mem_bits : 0;
  inventory.push_back({"interconnect & glue (balance)", balance});
}

}  // namespace

std::vector<ComponentCost> control_processor_inventory() {
  std::vector<ComponentCost> inventory = {
      {"Nios II/f CPU core", {3'000, 2'800, 0}},
      {"I-cache + D-cache (4 KiB each)", {200, 300, 65'536}},
      {"on-chip boot/TCM RAM (32 KiB)", {100, 100, 262'144}},
      {"triple-speed Ethernet MAC", {2'800, 3'900, 147'456}},
      {"DDR2 controller + PHY", {3'200, 4'600, 65'536}},
      {"UART/JTAG/timers/sysid", {900, 1'100, 16'384}},
      {"DMA + descriptor buffers", {400, 800, 225'000}},
  };
  add_balance(inventory, kPaperControlProcessor);
  return inventory;
}

std::vector<ComponentCost> np_core_with_monitor_inventory(
    std::uint64_t graph_mem_bits) {
  std::vector<ComponentCost> inventory = {
      {"PLASMA MIPS-I core", {3'500, 1'300, 0}},
      {"instruction + data memory (96 KiB)", {300, 200, 786'432}},
      {"packet rx/tx buffers (2 x 2 KiB)", {150, 150, 32'768}},
      {"monitor: graph walker + comparators", {18'000, 16'000, 0}},
      {"monitor: graph memory", {0, 0, graph_mem_bits}},
      {"parameterizable hash unit", merkle_hash_cost(4)},
      {"NIC + packet DMA", {6'000, 7'500, 0}},
      {"pipeline & dispatch arbiter", {5'000, 5'000, 0}},
  };
  add_balance(inventory, kPaperNpCoreWithMonitor);
  return inventory;
}

ResourceCost total(const std::vector<ComponentCost>& inventory) {
  ResourceCost sum;
  for (const auto& component : inventory) sum += component.cost;
  return sum;
}

}  // namespace sdmmon::monitor
