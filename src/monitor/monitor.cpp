#include "monitor/monitor.hpp"

#include <algorithm>
#include <stdexcept>

namespace sdmmon::monitor {

HardwareMonitor::HardwareMonitor(std::shared_ptr<const CompiledGraph> graph,
                                 std::unique_ptr<InstructionHash> hash)
    : graph_(std::move(graph)), hash_(std::move(hash)) {
  if (!graph_) throw std::invalid_argument("HardwareMonitor: null graph");
  rebind();
}

HardwareMonitor::HardwareMonitor(MonitoringGraph graph,
                                 std::unique_ptr<InstructionHash> hash)
    : HardwareMonitor(CompiledGraph::compile(std::move(graph)),
                      std::move(hash)) {}

void HardwareMonitor::rebind() {
  const std::size_t n = graph_->num_nodes();
  // The tracked set is duplicate-free, so n slots always suffice: every
  // later step writes into pre-sized buffers and never allocates.
  cur_.resize(n);
  nxt_.resize(n);
  stamps_.assign(n, 0);
  epoch_ = 0;
  fast_next_ = graph_->fast_next_data();
  succ_count_ = graph_->succ_count_data();
  node_exit_ = graph_->node_exit_data();
  bucket_count_ = graph_->num_hash_buckets();
  hash_shift_ = static_cast<std::uint32_t>(graph_->hash_width());
  rearm();
}

void HardwareMonitor::rearm() {
  slice_node_ = kNoSlice;
  live_count_ = 0;
  if (graph_->num_nodes() > 0) {
    cur_[0] = graph_->entry_index();
    live_count_ = 1;
  }
  exit_allowed_ = true;
  attack_flagged_ = false;
  peak_state_size_ = live_count_;
}

void HardwareMonitor::reset() {
  rearm();
  ++stats_.packets_monitored;
}

void HardwareMonitor::install(std::shared_ptr<const CompiledGraph> graph,
                              std::unique_ptr<InstructionHash> hash) {
  if (!graph) throw std::invalid_argument("HardwareMonitor: null graph");
  graph_ = std::move(graph);
  hash_ = std::move(hash);
  rebind();
}

void HardwareMonitor::install(MonitoringGraph graph,
                              std::unique_ptr<InstructionHash> hash) {
  install(CompiledGraph::compile(std::move(graph)), std::move(hash));
}

Verdict HardwareMonitor::on_instruction(std::uint32_t word) {
  return on_hashed(hash_->hash(word));
}

Verdict HardwareMonitor::flag_mismatch() {
  // No tracked node expected this hash: attack. Latched state (and the
  // stale live_count_ it keeps feeding state_size_accum) is preserved,
  // exactly like the reference walker.
  attack_flagged_ = true;
  ++stats_.mismatches;
  return Verdict::Mismatch;
}

void HardwareMonitor::advance_matched(
    std::span<const std::uint32_t> matched) {
  // Several tracked nodes matched the report at once (all drawn from one
  // compiled bucket, so each IS a match -- no hash test needed here).
  // Materialize the deduped union of their successor slices into cur_;
  // cur_ is free for writing because the current set lives in the
  // artifact's edge array, not in cur_.
  ++epoch_;
  std::size_t count = 0;
  bool exit_next = false;
  for (std::uint32_t u : matched) {
    exit_next |= graph_->node_can_exit(u);
    for (std::uint32_t s : graph_->successors(u)) {
      if (stamps_[s] == epoch_) continue;
      stamps_[s] = epoch_;
      cur_[count++] = s;
    }
  }
  slice_node_ = kNoSlice;
  live_count_ = count;
  exit_allowed_ = exit_next;
}

Verdict HardwareMonitor::step_list(std::uint8_t hashed) {
  // Single pass over the materialized list: match against the packed
  // hash array, OR exit capability, and concatenate compiled successor
  // slices into the next buffer. A matched trap terminal contributes an
  // empty slice -- it still counts as a match here, and the now-empty
  // state makes the NEXT report mismatch, so no separate rescan is
  // needed. Out-of-range reports (>= 2^w) simply never compare equal to
  // any stored hash.
  const std::uint32_t* cur = cur_.data();
  std::uint32_t* nxt = nxt_.data();
  std::size_t count = 0;
  std::size_t matched = 0;
  std::uint32_t first_match = 0;
  bool exit_next = false;
  for (std::size_t i = 0; i < live_count_; ++i) {
    const std::uint32_t node = cur[i];
    if (graph_->node_hash(node) != hashed) continue;
    exit_next |= graph_->node_can_exit(node);
    const std::span<const std::uint32_t> succ = graph_->successors(node);
    if (++matched == 1) {
      // Tentative single match: if nothing else matches we will adopt
      // the compiled slice by reference below, so don't copy yet.
      first_match = node;
      continue;
    }
    if (matched == 2) {
      // A second matched node: fetch the first match's slice into the
      // epoch-stamp dedup regime, then merge. Compiled slices are
      // duplicate-free, so the first one needs no stamp test.
      ++epoch_;
      for (std::uint32_t s : graph_->successors(first_match)) {
        stamps_[s] = epoch_;
        nxt[count++] = s;
      }
    }
    for (std::uint32_t s : succ) {
      if (stamps_[s] == epoch_) continue;
      stamps_[s] = epoch_;
      nxt[count++] = s;
    }
  }

  if (matched == 0) return flag_mismatch();
  exit_allowed_ = exit_next;
  if (matched == 1) {
    // Promote to the slice representation: the tracked set is the
    // matched node's compiled successor table, adopted by reference.
    slice_node_ = first_match;
    live_count_ = graph_->successor_count(first_match);
    return Verdict::Ok;
  }
  cur_.swap(nxt_);
  live_count_ = count;
  return Verdict::Ok;
}

std::vector<std::uint32_t> HardwareMonitor::state_nodes() const {
  std::vector<std::uint32_t> nodes;
  if (slice_node_ != kNoSlice) {
    const std::span<const std::uint32_t> succ =
        graph_->successors(slice_node_);
    nodes.assign(succ.begin(), succ.end());
  } else {
    nodes.assign(cur_.begin(), cur_.begin() + live_count_);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace sdmmon::monitor
