// Offline binary analysis (paper Figure 1, left): extract the monitoring
// graph from a processing binary. The network operator runs this before
// signing and shipping the (binary, graph, hash parameter) package.
//
// Successor rules per instruction class:
//   ALU/load/store  -> {next}
//   branch          -> {fall-through, taken target} (the monitor has no
//                      data path, so both are considered valid -- Sec 2.1)
//   j / jal         -> {absolute target}
//   jr / jalr       -> over-approximated: every recorded return site (the
//                      instruction after each jal) plus every jal target,
//                      and the node is marked exit-capable (a packet
//                      handler's final `jr $ra` returns to the runtime).
//   syscall/break   -> no successors (traps end the packet)
//
// The over-approximation for indirect jumps is sound (no false alarms on
// valid executions); it only widens the NDFA state the attacker must
// match, never narrows it.
#ifndef SDMMON_MONITOR_ANALYSIS_HPP
#define SDMMON_MONITOR_ANALYSIS_HPP

#include "isa/program.hpp"
#include "monitor/graph.hpp"
#include "monitor/hash.hpp"

namespace sdmmon::monitor {

/// Basic-block boundaries of the program text (for reports, tests, and
/// the core's predecoded superblock extents -- np::CompiledProgram).
struct BasicBlocks {
  /// Sorted instruction indices that start a basic block.
  std::vector<std::uint32_t> leaders;
};

/// Total over arbitrary text: undecodable words trap at runtime, so they
/// terminate a block like syscall/break instead of throwing.
BasicBlocks find_basic_blocks(const isa::Program& program);

/// Build the monitoring graph for `program` using `hash`. Throws
/// isa::IsaError if the text contains undecodable words.
MonitoringGraph extract_graph(const isa::Program& program,
                              const InstructionHash& hash);

}  // namespace sdmmon::monitor

#endif  // SDMMON_MONITOR_ANALYSIS_HPP
