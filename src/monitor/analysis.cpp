#include "monitor/analysis.hpp"

#include <algorithm>

#include "isa/isa.hpp"

namespace sdmmon::monitor {

namespace {

using isa::Instr;
using isa::Op;
using isa::OpClass;

struct DecodedText {
  std::vector<Instr> instrs;
  std::vector<std::uint32_t> jal_targets;      // node indices
  std::vector<std::uint32_t> return_sites;     // node index after each jal
};

DecodedText decode_text(const isa::Program& program) {
  DecodedText out;
  out.instrs.reserve(program.text.size());
  const std::uint32_t n = static_cast<std::uint32_t>(program.text.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    Instr instr = isa::decode(program.text[i]);
    if (instr.op == Op::Jal) {
      const std::uint32_t target_pc = instr.target * 4;
      if (target_pc >= program.text_base &&
          (target_pc - program.text_base) / 4 < n) {
        out.jal_targets.push_back((target_pc - program.text_base) / 4);
      }
      if (i + 1 < n) out.return_sites.push_back(i + 1);
    }
    out.instrs.push_back(instr);
  }
  return out;
}

void add_unique(std::vector<std::uint32_t>& v, std::uint32_t x) {
  if (std::find(v.begin(), v.end(), x) == v.end()) v.push_back(x);
}

}  // namespace

BasicBlocks find_basic_blocks(const isa::Program& program) {
  const std::uint32_t n = static_cast<std::uint32_t>(program.text.size());
  std::vector<std::uint32_t> leaders;
  if (n == 0) return {};
  add_unique(leaders, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    // Total over arbitrary text: an undecodable word traps at runtime,
    // so like syscall/break it ends its block (predecode relies on this
    // -- see np::CompiledProgram).
    std::optional<Instr> decoded = isa::try_decode(program.text[i]);
    if (!decoded) {
      if (i + 1 < n) add_unique(leaders, i + 1);
      continue;
    }
    const Instr& instr = *decoded;
    switch (isa::op_class(instr.op)) {
      case OpClass::Branch: {
        const std::int64_t target =
            static_cast<std::int64_t>(i) + 1 + instr.imm;
        if (target >= 0 && target < n) {
          add_unique(leaders, static_cast<std::uint32_t>(target));
        }
        if (i + 1 < n) add_unique(leaders, i + 1);
        break;
      }
      case OpClass::Jump:
      case OpClass::JumpLink: {
        const std::uint32_t target_pc = instr.target * 4;
        if (target_pc >= program.text_base) {
          const std::uint32_t idx = (target_pc - program.text_base) / 4;
          if (idx < n) add_unique(leaders, idx);
        }
        if (i + 1 < n) add_unique(leaders, i + 1);
        break;
      }
      case OpClass::JumpReg:
      case OpClass::Trap:
        if (i + 1 < n) add_unique(leaders, i + 1);
        break;
      default:
        break;
    }
  }
  std::sort(leaders.begin(), leaders.end());
  return {std::move(leaders)};
}

MonitoringGraph extract_graph(const isa::Program& program,
                              const InstructionHash& hash) {
  DecodedText text = decode_text(program);
  const std::uint32_t n = static_cast<std::uint32_t>(text.instrs.size());

  std::vector<GraphNode> nodes(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    GraphNode& node = nodes[i];
    node.hash = hash.hash(program.text[i]);
    const Instr& instr = text.instrs[i];

    switch (isa::op_class(instr.op)) {
      case OpClass::Alu:
      case OpClass::Load:
      case OpClass::Store:
        if (i + 1 < n) node.successors.push_back(i + 1);
        break;
      case OpClass::Branch: {
        // Both outcomes valid: the monitor has no data path (Sec 2.1).
        const std::int64_t taken =
            static_cast<std::int64_t>(i) + 1 + instr.imm;
        if (i + 1 < n) node.successors.push_back(i + 1);
        if (taken >= 0 && taken < n &&
            static_cast<std::uint32_t>(taken) != i + 1) {
          node.successors.push_back(static_cast<std::uint32_t>(taken));
        }
        break;
      }
      case OpClass::Jump:
      case OpClass::JumpLink: {
        const std::uint32_t target_pc = instr.target * 4;
        if (target_pc >= program.text_base) {
          const std::uint32_t idx = (target_pc - program.text_base) / 4;
          if (idx < n) node.successors.push_back(idx);
        }
        break;
      }
      case OpClass::JumpReg: {
        for (std::uint32_t site : text.return_sites) {
          add_unique(node.successors, site);
        }
        for (std::uint32_t target : text.jal_targets) {
          add_unique(node.successors, target);
        }
        node.can_exit = true;  // may be the handler's final return
        std::sort(node.successors.begin(), node.successors.end());
        break;
      }
      case OpClass::Trap:
        break;  // traps end the packet; no valid successor
    }
  }

  std::uint32_t entry_index = 0;
  if (program.entry >= program.text_base) {
    entry_index = (program.entry - program.text_base) / 4;
    if (entry_index >= n) entry_index = 0;
  }
  return MonitoringGraph(hash.width(), program.text_base, entry_index,
                         std::move(nodes));
}

}  // namespace sdmmon::monitor
