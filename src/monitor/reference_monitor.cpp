#include "monitor/reference_monitor.hpp"

#include <algorithm>

namespace sdmmon::monitor {

ReferenceMonitor::ReferenceMonitor(MonitoringGraph graph,
                                   std::unique_ptr<InstructionHash> hash)
    : graph_(std::move(graph)), hash_(std::move(hash)) {
  rearm();
}

void ReferenceMonitor::rearm() {
  state_.clear();
  if (!graph_.nodes().empty()) state_.push_back(graph_.entry_index());
  exit_allowed_ = true;
  attack_flagged_ = false;
  peak_state_size_ = state_.size();
}

void ReferenceMonitor::reset() {
  rearm();
  ++stats_.packets_monitored;
}

void ReferenceMonitor::install(MonitoringGraph graph,
                               std::unique_ptr<InstructionHash> hash) {
  graph_ = std::move(graph);
  hash_ = std::move(hash);
  rearm();
}

Verdict ReferenceMonitor::on_instruction(std::uint32_t word) {
  return on_hashed(hash_->hash(word));
}

Verdict ReferenceMonitor::on_hashed(std::uint8_t hashed) {
  ++stats_.instructions_checked;
  stats_.state_size_accum += state_.size();
  peak_state_size_ = std::max(peak_state_size_, state_.size());

  if (attack_flagged_) return Verdict::Mismatch;

  // Match phase: keep tracked nodes whose stored hash equals the report.
  scratch_.clear();
  bool exit_next = false;
  for (std::uint32_t idx : state_) {
    const GraphNode& node = graph_.node(idx);
    if (node.hash != hashed) continue;
    exit_next = exit_next || node.can_exit;
    for (std::uint32_t succ : node.successors) scratch_.push_back(succ);
  }

  if (scratch_.empty() && !exit_next) {
    // No tracked node expected this hash (or only trap-terminal nodes
    // matched and then nothing may follow -- handled on the *next* report).
    bool any_match = false;
    for (std::uint32_t idx : state_) {
      if (graph_.node(idx).hash == hashed) {
        any_match = true;
        break;
      }
    }
    if (!any_match) {
      attack_flagged_ = true;
      ++stats_.mismatches;
      return Verdict::Mismatch;
    }
  }

  // Advance phase: successor union becomes the new state set.
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  state_ = scratch_;
  exit_allowed_ = exit_next;
  return Verdict::Ok;
}

}  // namespace sdmmon::monitor
