#include "monitor/graph_dot.hpp"

#include <sstream>

#include "isa/disassembler.hpp"

namespace sdmmon::monitor {

std::string graph_to_dot(const MonitoringGraph& graph,
                         const isa::Program* program) {
  std::ostringstream os;
  os << "digraph monitoring_graph {\n"
     << "  rankdir=TB;\n"
     << "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";

  for (std::size_t i = 0; i < graph.size(); ++i) {
    const GraphNode& node = graph.node(static_cast<std::uint32_t>(i));
    os << "  n" << i << " [label=\"" << i << ": h=" << int(node.hash);
    if (program != nullptr && i < program->text.size()) {
      std::string text = isa::disassemble(
          program->text[i],
          program->text_base + static_cast<std::uint32_t>(i) * 4);
      // Escape quotes for DOT.
      std::string escaped;
      for (char c : text) {
        if (c == '"') escaped += "\\\"";
        else escaped += c;
      }
      os << "\\n" << escaped;
    }
    os << "\"";
    if (node.can_exit) os << ", peripheries=2";
    if (i == graph.entry_index()) os << ", style=bold";
    os << "];\n";
  }

  for (std::size_t i = 0; i < graph.size(); ++i) {
    for (std::uint32_t succ :
         graph.node(static_cast<std::uint32_t>(i)).successors) {
      os << "  n" << i << " -> n" << succ;
      if (succ != i + 1) os << " [style=dashed]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace sdmmon::monitor
