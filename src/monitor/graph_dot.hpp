// Graphviz (DOT) export of monitoring graphs, for debugging offline
// analysis and for documentation figures (the paper's Figure 1 monitoring
// graph, concretely).
#ifndef SDMMON_MONITOR_GRAPH_DOT_HPP
#define SDMMON_MONITOR_GRAPH_DOT_HPP

#include <string>

#include "isa/program.hpp"
#include "monitor/graph.hpp"

namespace sdmmon::monitor {

/// DOT digraph of the monitoring graph. When `program` is non-null the
/// node labels include the disassembled instruction; otherwise only index
/// and hash. Exit-capable nodes are drawn with a double border.
std::string graph_to_dot(const MonitoringGraph& graph,
                         const isa::Program* program = nullptr);

}  // namespace sdmmon::monitor

#endif  // SDMMON_MONITOR_GRAPH_DOT_HPP
