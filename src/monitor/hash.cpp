#include "monitor/hash.hpp"

#include <stdexcept>
#include <vector>

#include "util/bitops.hpp"

namespace sdmmon::monitor {

namespace {
void check_width(int width_bits) {
  if (width_bits != 1 && width_bits != 2 && width_bits != 4 &&
      width_bits != 8) {
    throw std::invalid_argument("hash width must be 1, 2, 4, or 8 bits");
  }
}
}  // namespace

const char* compression_name(Compression compression) {
  switch (compression) {
    case Compression::ArithmeticSum: return "sum";
    case Compression::SboxSum: return "sbox-sum";
  }
  return "?";
}

MerkleTreeHash::MerkleTreeHash(std::uint32_t parameter, int width_bits,
                               Compression compression)
    : parameter_(parameter), width_(width_bits), compression_(compression) {
  check_width(width_bits);
}

std::uint8_t MerkleTreeHash::compress(std::uint8_t a, std::uint8_t b) const {
  // PRESENT cipher 4-bit S-box.
  static constexpr std::uint8_t kSbox[16] = {0xC, 0x5, 0x6, 0xB, 0x9, 0x0,
                                             0xA, 0xD, 0x3, 0xE, 0xF, 0x8,
                                             0x4, 0x7, 0x1, 0x2};
  const std::uint8_t sum = static_cast<std::uint8_t>((a + b) & mask());
  if (compression_ == Compression::ArithmeticSum || width_ < 4) return sum;
  if (width_ == 4) return kSbox[sum];
  // width 8: substitute each nibble.
  return static_cast<std::uint8_t>(kSbox[sum >> 4] << 4 | kSbox[sum & 0xF]);
}

int MerkleTreeHash::node_count() const {
  // Leaves pair parameter chunks with instruction chunks; the binary tree
  // above them has (leaves - 1) inner nodes.
  const int leaves = 32 / width_;
  return 2 * leaves - 1;
}

std::uint8_t MerkleTreeHash::hash(std::uint32_t word) const {
  const int w = width_;
  const int chunks = 32 / w;

  // Leaf layer: leaf i compresses parameter chunk i with word chunk i.
  // Fixed-size buffer (at most 32 chunks at w=1); hashing runs once per
  // simulated instruction, so this path must not allocate.
  std::uint8_t level[32];
  for (int i = 0; i < chunks; ++i) {
    auto p = static_cast<std::uint8_t>(util::bits(parameter_, i * w, w));
    auto d = static_cast<std::uint8_t>(util::bits(word, i * w, w));
    level[i] = compress(p, d);
  }

  // Reduce pairwise to the root.
  int count = chunks;
  while (count > 1) {
    int next = 0;
    for (int i = 0; i + 1 < count; i += 2) {
      level[next++] = compress(level[i], level[i + 1]);
    }
    if (count % 2 == 1) level[next++] = level[count - 1];
    count = next;
  }
  return level[0];
}

std::string MerkleTreeHash::name() const {
  return std::string("merkle-tree/w") + std::to_string(width_) + "/" +
         compression_name(compression_);
}

std::unique_ptr<InstructionHash> MerkleTreeHash::clone() const {
  return std::make_unique<MerkleTreeHash>(*this);
}

BitcountHash::BitcountHash(int width_bits) : width_(width_bits) {
  check_width(width_bits);
}

std::uint8_t BitcountHash::hash(std::uint32_t word) const {
  return static_cast<std::uint8_t>(util::popcount32(word)) & mask();
}

std::unique_ptr<InstructionHash> BitcountHash::clone() const {
  return std::make_unique<BitcountHash>(*this);
}

}  // namespace sdmmon::monitor
