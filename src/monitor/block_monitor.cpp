#include "monitor/block_monitor.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "isa/isa.hpp"
#include "monitor/analysis.hpp"

namespace sdmmon::monitor {

std::size_t BlockGraph::size_bits() const {
  if (blocks_.empty()) return 0;
  const std::size_t index_bits = std::max<std::size_t>(
      1, std::bit_width(blocks_.size() - 1 == 0 ? std::size_t{1}
                                                : blocks_.size() - 1));
  std::size_t total = 0;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    total += static_cast<std::size_t>(hash_width_) + 8 + 1 + 2;
    for (std::uint32_t succ : blocks_[i].successors) {
      if (succ != i + 1) total += index_bits;
    }
  }
  return total;
}

BlockGraph extract_block_graph(const isa::Program& program,
                               const MerkleTreeHash& hash) {
  const std::uint32_t n = static_cast<std::uint32_t>(program.text.size());
  if (n == 0) return BlockGraph(hash.width(), 0, {});

  // Leaders from control flow, plus the entry point.
  BasicBlocks bb = find_basic_blocks(program);
  std::vector<std::uint32_t> leaders = bb.leaders;
  std::uint32_t entry_index = 0;
  if (program.entry >= program.text_base) {
    entry_index = (program.entry - program.text_base) / 4;
    if (entry_index >= n) entry_index = 0;
  }
  if (std::find(leaders.begin(), leaders.end(), entry_index) ==
      leaders.end()) {
    leaders.push_back(entry_index);
    std::sort(leaders.begin(), leaders.end());
  }

  // Map every leader instruction index to its block index.
  std::map<std::uint32_t, std::uint32_t> block_of_leader;
  for (std::uint32_t b = 0; b < leaders.size(); ++b) {
    block_of_leader[leaders[b]] = b;
  }
  auto block_at = [&](std::uint32_t instr) -> std::optional<std::uint32_t> {
    auto it = block_of_leader.find(instr);
    if (it == block_of_leader.end()) return std::nullopt;
    return it->second;
  };

  // Collect jr/jalr over-approximation targets, as the instruction-level
  // analyzer does.
  std::vector<std::uint32_t> indirect_targets;  // instruction indices
  for (std::uint32_t i = 0; i < n; ++i) {
    isa::Instr instr = isa::decode(program.text[i]);
    if (instr.op == isa::Op::Jal) {
      if (i + 1 < n) indirect_targets.push_back(i + 1);
      const std::uint32_t target_pc = instr.target * 4;
      if (target_pc >= program.text_base &&
          (target_pc - program.text_base) / 4 < n) {
        indirect_targets.push_back((target_pc - program.text_base) / 4);
      }
    }
  }

  std::vector<BlockNode> blocks(leaders.size());
  for (std::uint32_t b = 0; b < leaders.size(); ++b) {
    BlockNode& block = blocks[b];
    block.first_instr = leaders[b];
    const std::uint32_t end =
        (b + 1 < leaders.size()) ? leaders[b + 1] : n;
    block.length = end - leaders[b];

    std::uint8_t fold = 0;
    for (std::uint32_t i = leaders[b]; i < end; ++i) {
      fold = hash.compress(fold, hash.hash(program.text[i]));
    }
    block.fold = fold;

    // Successors from the block's last instruction.
    const std::uint32_t last = end - 1;
    isa::Instr instr = isa::decode(program.text[last]);
    auto add_succ = [&](std::uint32_t instr_index) {
      auto target = block_at(instr_index);
      if (target &&
          std::find(block.successors.begin(), block.successors.end(),
                    *target) == block.successors.end()) {
        block.successors.push_back(*target);
      }
    };
    switch (isa::op_class(instr.op)) {
      case isa::OpClass::Alu:
      case isa::OpClass::Load:
      case isa::OpClass::Store:
        if (last + 1 < n) add_succ(last + 1);
        break;
      case isa::OpClass::Branch: {
        if (last + 1 < n) add_succ(last + 1);
        const std::int64_t taken =
            static_cast<std::int64_t>(last) + 1 + instr.imm;
        if (taken >= 0 && taken < n) {
          add_succ(static_cast<std::uint32_t>(taken));
        }
        break;
      }
      case isa::OpClass::Jump:
      case isa::OpClass::JumpLink: {
        const std::uint32_t target_pc = instr.target * 4;
        if (target_pc >= program.text_base) {
          const std::uint32_t idx = (target_pc - program.text_base) / 4;
          if (idx < n) add_succ(idx);
        }
        break;
      }
      case isa::OpClass::JumpReg:
        for (std::uint32_t t : indirect_targets) add_succ(t);
        block.can_exit = true;
        std::sort(block.successors.begin(), block.successors.end());
        break;
      case isa::OpClass::Trap:
        break;
    }
  }

  const std::uint32_t entry_block = *block_at(entry_index);
  return BlockGraph(hash.width(), entry_block, std::move(blocks));
}

BlockMonitor::BlockMonitor(BlockGraph graph,
                           std::unique_ptr<MerkleTreeHash> hash)
    : graph_(std::move(graph)), hash_(std::move(hash)) {
  reset();
}

void BlockMonitor::reset() {
  state_.clear();
  if (!graph_.blocks().empty()) {
    state_.push_back({graph_.entry_block(), 0, 0});
  }
  exit_allowed_ = true;
  attack_flagged_ = false;
}

Verdict BlockMonitor::on_instruction(std::uint32_t word) {
  if (attack_flagged_) return Verdict::Mismatch;

  const std::uint8_t h = hash_->hash(word);
  scratch_.clear();
  bool exit_next = false;

  auto push_unique = [&](const Tracked& t) {
    for (const Tracked& existing : scratch_) {
      if (existing.block == t.block && existing.seen == t.seen &&
          existing.fold == t.fold) {
        return;
      }
    }
    scratch_.push_back(t);
  };

  for (const Tracked& t : state_) {
    const BlockNode& block = graph_.blocks()[t.block];
    Tracked next{t.block, t.seen + 1,
                 hash_->compress(t.fold, h)};
    if (next.seen < block.length) {
      push_unique(next);
      continue;
    }
    // Block completed: the fold must match.
    if (next.fold != block.fold) continue;
    exit_next = exit_next || block.can_exit;
    for (std::uint32_t succ : block.successors) {
      push_unique({succ, 0, 0});
    }
  }

  if (scratch_.empty() && !exit_next) {
    attack_flagged_ = true;
    return Verdict::Mismatch;
  }
  state_ = scratch_;
  exit_allowed_ = exit_next;
  return Verdict::Ok;
}

}  // namespace sdmmon::monitor
