#include "monitor/graph_codec.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace sdmmon::monitor {

namespace {

int index_bits_for(std::uint32_t node_count) {
  if (node_count <= 1) return 1;
  return static_cast<int>(std::bit_width(node_count - 1));
}

enum Shape : std::uint32_t {
  kTerminal = 0,
  kSequential = 1,
  kSeqPlusEdge = 2,
  kExplicitList = 3,
};

}  // namespace

void BitWriter::write(std::uint32_t value, int bits) {
  for (int i = bits - 1; i >= 0; --i) {
    const std::size_t byte = bits_ / 8;
    if (byte == buf_.size()) buf_.push_back(0);
    if ((value >> i) & 1) {
      buf_[byte] |= static_cast<std::uint8_t>(0x80u >> (bits_ % 8));
    }
    ++bits_;
  }
}

std::uint32_t BitReader::read(int bits) {
  std::uint32_t out = 0;
  for (int i = 0; i < bits; ++i) {
    const std::size_t byte = pos_ / 8;
    if (byte >= data_.size()) {
      throw util::DecodeError("BitReader: past end of stream");
    }
    out = (out << 1) |
          ((data_[byte] >> (7 - pos_ % 8)) & 1u);
    ++pos_;
  }
  return out;
}

util::Bytes EncodedGraph::serialize() const {
  util::ByteWriter w;
  w.u8(hash_width);
  w.u32(text_base);
  w.u32(entry_index);
  w.u32(node_count);
  w.u64(bit_length);
  w.blob(bits);
  return w.take();
}

EncodedGraph EncodedGraph::deserialize(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  EncodedGraph e;
  e.hash_width = r.u8();
  e.text_base = r.u32();
  e.entry_index = r.u32();
  e.node_count = r.u32();
  e.bit_length = r.u64();
  e.bits = r.blob();
  return e;
}

EncodedGraph encode_graph(const MonitoringGraph& graph) {
  const auto& nodes = graph.nodes();
  const std::uint32_t n = static_cast<std::uint32_t>(nodes.size());
  const int idx_bits = index_bits_for(n);
  const int w = graph.hash_width();

  BitWriter writer;
  for (std::uint32_t i = 0; i < n; ++i) {
    const GraphNode& node = nodes[i];
    writer.write(node.hash, w);
    writer.write(node.can_exit ? 1 : 0, 1);

    const auto& succ = node.successors;
    const bool has_seq =
        succ.size() >= 1 &&
        std::find(succ.begin(), succ.end(), i + 1) != succ.end();
    if (succ.empty()) {
      writer.write(kTerminal, 2);
    } else if (succ.size() == 1 && has_seq) {
      writer.write(kSequential, 2);
    } else if (succ.size() == 2 && succ[0] == i + 1) {
      writer.write(kSeqPlusEdge, 2);
      writer.write(succ[1], idx_bits);
    } else {
      if (succ.size() > 255) {
        throw std::invalid_argument("graph node has too many successors");
      }
      writer.write(kExplicitList, 2);
      writer.write(static_cast<std::uint32_t>(succ.size()), 8);
      for (std::uint32_t target : succ) writer.write(target, idx_bits);
    }
  }

  EncodedGraph out;
  out.hash_width = static_cast<std::uint8_t>(w);
  out.text_base = graph.text_base();
  out.entry_index = graph.entry_index();
  out.node_count = n;
  out.bit_length = writer.bit_count();
  out.bits = writer.bytes();
  return out;
}

MonitoringGraph decode_graph(const EncodedGraph& encoded) {
  const std::uint32_t n = encoded.node_count;
  const int w = encoded.hash_width;
  // Hostile-input bounds: sane width, and the claimed node count must fit
  // in the bitstream (every node costs at least w+3 bits).
  if (w < 1 || w > 8) {
    throw util::DecodeError("encoded graph: bad hash width");
  }
  const std::uint64_t min_bits_per_node = static_cast<std::uint64_t>(w) + 3;
  if (static_cast<std::uint64_t>(n) * min_bits_per_node >
      encoded.bits.size() * 8ull) {
    throw util::DecodeError("encoded graph: node count exceeds bitstream");
  }
  const int idx_bits = index_bits_for(n);

  BitReader reader(encoded.bits);
  std::vector<GraphNode> nodes(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    GraphNode& node = nodes[i];
    node.hash = static_cast<std::uint8_t>(reader.read(w));
    node.can_exit = reader.read(1) != 0;
    switch (reader.read(2)) {
      case kTerminal:
        break;
      case kSequential:
        node.successors = {i + 1};
        break;
      case kSeqPlusEdge: {
        // The analyzer emits fall-through first, then the taken target,
        // so decode preserves that order.
        std::uint32_t other = reader.read(idx_bits);
        node.successors = {i + 1, other};
        break;
      }
      case kExplicitList: {
        std::uint32_t count = reader.read(8);
        node.successors.reserve(count);
        for (std::uint32_t s = 0; s < count; ++s) {
          node.successors.push_back(reader.read(idx_bits));
        }
        break;
      }
    }
  }
  if (reader.position() != encoded.bit_length) {
    throw util::DecodeError("graph bitstream length mismatch");
  }
  return MonitoringGraph(w, encoded.text_base, encoded.entry_index,
                         std::move(nodes));
}

std::size_t encoded_graph_bits(const MonitoringGraph& graph) {
  return encode_graph(graph).bit_length;
}

}  // namespace sdmmon::monitor
