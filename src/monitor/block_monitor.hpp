// Basic-block-granularity hardware monitor -- the design point of the
// related work the paper cites (Arora et al. DATE'05, IMPRES DAC'06),
// implemented as a comparison baseline to the per-instruction monitor.
//
// Offline: the binary is split into basic blocks; each block stores its
// instruction count and a w-bit fold of its instructions' hashes, plus
// the set of legal successor blocks. Runtime: the monitor folds the
// incoming per-instruction hashes and compares only when a tracked block
// completes. Deviations are therefore detected at block boundaries (or
// missed entirely if the attacker's block folds to the same value), which
// is exactly the granularity trade-off the per-instruction scheme of
// Mao & Wolf improves on.
#ifndef SDMMON_MONITOR_BLOCK_MONITOR_HPP
#define SDMMON_MONITOR_BLOCK_MONITOR_HPP

#include <memory>
#include <vector>

#include "isa/program.hpp"
#include "monitor/hash.hpp"
#include "monitor/monitor.hpp"  // for Verdict

namespace sdmmon::monitor {

struct BlockNode {
  std::uint32_t first_instr = 0;           // instruction index of the leader
  std::uint32_t length = 0;                // instructions in the block
  std::uint8_t fold = 0;                   // w-bit fold of member hashes
  bool can_exit = false;                   // block may end the handler
  std::vector<std::uint32_t> successors;   // block indices

  bool operator==(const BlockNode& rhs) const = default;
};

class BlockGraph {
 public:
  BlockGraph() = default;
  BlockGraph(int hash_width, std::uint32_t entry_block,
             std::vector<BlockNode> blocks)
      : hash_width_(hash_width),
        entry_block_(entry_block),
        blocks_(std::move(blocks)) {}

  int hash_width() const { return hash_width_; }
  std::uint32_t entry_block() const { return entry_block_; }
  const std::vector<BlockNode>& blocks() const { return blocks_; }
  std::size_t size() const { return blocks_.size(); }

  /// Storage estimate: per block, fold (w bits) + length (8) + exit (1) +
  /// shape tag (2) + explicit edges (ceil(log2(B)) each).
  std::size_t size_bits() const;

 private:
  int hash_width_ = 4;
  std::uint32_t entry_block_ = 0;
  std::vector<BlockNode> blocks_;
};

/// Offline analysis at block granularity. Fold = iterated compression of
/// member instruction hashes (left fold, sum-based like the tree nodes).
BlockGraph extract_block_graph(const isa::Program& program,
                               const MerkleTreeHash& hash);

/// Runtime monitor at block granularity. Same reporting interface as the
/// per-instruction HardwareMonitor so the ablation drives both alike.
class BlockMonitor {
 public:
  BlockMonitor(BlockGraph graph, std::unique_ptr<MerkleTreeHash> hash);

  void reset();
  Verdict on_instruction(std::uint32_t word);
  bool exit_allowed() const { return exit_allowed_; }
  bool attack_flagged() const { return attack_flagged_; }

  const BlockGraph& graph() const { return graph_; }

 private:
  struct Tracked {
    std::uint32_t block = 0;
    std::uint32_t seen = 0;   // instructions consumed in this block
    std::uint8_t fold = 0;    // running fold
  };

  BlockGraph graph_;
  std::unique_ptr<MerkleTreeHash> hash_;
  std::vector<Tracked> state_;
  std::vector<Tracked> scratch_;
  bool exit_allowed_ = true;
  bool attack_flagged_ = false;
};

}  // namespace sdmmon::monitor

#endif  // SDMMON_MONITOR_BLOCK_MONITOR_HPP
