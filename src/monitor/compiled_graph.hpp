// Install-time compilation of a MonitoringGraph into the flat, immutable
// artifact the hot loop actually walks. The wire-format MonitoringGraph
// (one heap vector of successors per node) is what offline analysis
// emits and what install packages sign; it is the wrong shape for the
// per-retired-instruction match loop. CompiledGraph lowers it once into
// CSR arrays -- packed per-node {hash, can_exit} records and one
// contiguous edge array in which every node's successor slice is
// pre-bucketed by the 2^w hash values -- so the monitor's match+advance
// phase is a single bucket lookup: the successors of node u that would
// match report h are the contiguous slice bucket(u, h), computed at
// compile time, never filtered at run time.
//
// A CompiledGraph is immutable after compile() and is shared as
// std::shared_ptr<const CompiledGraph> by every core of an MPSoC, by the
// LastGoodConfig recovery snapshot, and by the device application store:
// installing, fast-switching, and quarantine re-imaging are pointer
// swaps, never graph copies. (This mirrors how co-processor behavior
// monitors precompute their detection tables out of the enforcement
// path.)
#ifndef SDMMON_MONITOR_COMPILED_GRAPH_HPP
#define SDMMON_MONITOR_COMPILED_GRAPH_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "monitor/graph.hpp"

namespace sdmmon::monitor {

class CompiledGraph {
 public:
  /// Hash values are at most 8 bits wide, so the per-hash population
  /// table is sized for 256 values regardless of the graph's width;
  /// entries above 2^w simply stay zero.
  static constexpr std::size_t kNumBuckets = 256;

  /// Sentinels in the fast transition table (fast_next_data()). Real
  /// node indices are always below both: a graph cannot have 2^32-2
  /// nodes.
  static constexpr std::uint32_t kFastEmpty = 0xFFFFFFFFu;  // mismatch
  static constexpr std::uint32_t kFastMulti = 0xFFFFFFFEu;  // >1 match

  /// Lower `graph` into the flat form. Validates structure -- entry index
  /// and every successor in range, node hashes within 2^hash_width --
  /// and throws std::invalid_argument on a malformed graph (this is the
  /// rejection point validate_install_config relies on). The source
  /// graph is retained for wire-format accessors and re-verification.
  static std::shared_ptr<const CompiledGraph> compile(MonitoringGraph graph);

  std::size_t num_nodes() const { return node_hash_.size(); }
  std::size_t num_edges() const { return edges_.size(); }
  int hash_width() const { return source_.hash_width(); }
  std::uint32_t entry_index() const { return source_.entry_index(); }
  /// 2^w: the number of per-node hash buckets actually materialized.
  std::uint32_t num_hash_buckets() const { return hash_buckets_; }

  std::uint8_t node_hash(std::uint32_t node) const {
    return node_hash_[node];
  }
  bool node_can_exit(std::uint32_t node) const {
    return node_exit_[node] != 0;
  }

  /// Duplicate-free successor slice of `node` (deduplication happens at
  /// compile time), grouped by successor hash value, ascending within
  /// each group. num_edges() counts the deduped edges.
  std::span<const std::uint32_t> successors(std::uint32_t node) const {
    const std::size_t base = static_cast<std::size_t>(node) * hash_buckets_;
    return {edges_.data() + bucket_off_[base],
            edges_.data() + bucket_off_[base + hash_buckets_]};
  }
  std::uint32_t successor_count(std::uint32_t node) const {
    return succ_count_[node];
  }

  /// Flat single-successor transition table, indexed
  /// [(node << hash_width) | hash]: the node index v when bucket(node,
  /// hash) == {v}, kFastEmpty when the bucket is empty (the report would
  /// mismatch), kFastMulti when several successors match (take the
  /// bucket() slice). This is the whole per-instruction hot path of the
  /// monitor: one shift-or index, one load.
  const std::uint32_t* fast_next_data() const { return fast_next_.data(); }
  const std::uint32_t* succ_count_data() const { return succ_count_.data(); }
  const std::uint8_t* node_exit_data() const { return node_exit_.data(); }

  /// Result of one batch_step() walk: where the walk stopped and the
  /// stat deltas the caller folds into its cumulative counters.
  struct BatchStep {
    std::uint32_t node = 0;       // position after `consumed` steps
    std::size_t consumed = 0;     // hashes that took the fast transition
    std::size_t live = 0;         // tracked-set size after the walk
    std::size_t peak = 0;         // running peak, seeded by the caller
    std::uint64_t width_accum = 0;  // sum of pre-step tracked-set sizes
  };

  /// Graph-resident multi-hash stepping: starting in slice form at
  /// `node` (tracked set == successors(node), size `live`), consume as
  /// many of the `n` hashes as resolve through the flat fast_next table
  /// -- one dependent load per hash -- and report where the walk
  /// stopped. The walk ends at the first hash whose transition is not a
  /// single-successor fast entry (kFastMulti / kFastEmpty / report out
  /// of range); the caller replays that hash through its per-hash
  /// reference path, so batched and per-hash feeds can never diverge.
  /// Width accounting mirrors HardwareMonitor::on_hashed: each consumed
  /// hash is counted *before* its transition, at the pre-step set size.
  /// Static and inline: callers pass the raw table views they already
  /// cache, keeping the loop free of any smart-pointer or member loads.
  static BatchStep batch_step(const std::uint32_t* fast_next,
                              const std::uint32_t* succ_count,
                              std::uint32_t hash_shift,
                              std::uint32_t bucket_count, std::uint32_t node,
                              std::size_t live, std::size_t peak,
                              const std::uint8_t* hashes, std::size_t n) {
    BatchStep out;
    std::size_t i = 0;
    if (bucket_count >= kNumBuckets) {
      // Full-width graphs (w == 8): a uint8 report can never be out of
      // range, so the range test vanishes from the inner loop and each
      // iteration is exactly one shift-or index + one dependent load.
      while (i < n) {
        const std::uint32_t v = fast_next[(node << hash_shift) | hashes[i]];
        if (v >= kFastMulti) break;
        out.width_accum += live;
        if (live > peak) peak = live;
        node = v;
        live = succ_count[v];
        ++i;
      }
    } else {
      while (i < n) {
        const std::uint8_t hashed = hashes[i];
        if (hashed >= bucket_count) break;
        const std::uint32_t v = fast_next[(node << hash_shift) | hashed];
        if (v >= kFastMulti) break;
        out.width_accum += live;
        if (live > peak) peak = live;
        node = v;
        live = succ_count[v];
        ++i;
      }
    }
    out.node = node;
    out.consumed = i;
    out.live = live;
    out.peak = peak;
    return out;
  }

  /// The successors of `node` whose stored hash equals `hash` -- i.e.
  /// exactly the tracked positions that match report `hash` one step
  /// after `node` matched. Contiguous, duplicate-free, precomputed.
  /// Reports outside [0, 2^w) can never match and yield an empty slice.
  std::span<const std::uint32_t> bucket(std::uint32_t node,
                                        std::uint8_t hash) const {
    if (hash >= hash_buckets_) return {};
    const std::size_t at =
        static_cast<std::size_t>(node) * hash_buckets_ + hash;
    return {edges_.data() + bucket_off_[at],
            edges_.data() + bucket_off_[at + 1]};
  }

  /// Number of graph nodes whose hash equals `hash` -- the hard upper
  /// bound on how many tracked positions can simultaneously match one
  /// report (comparator pressure for a hardware sizing estimate).
  std::uint32_t bucket_population(std::size_t hash) const {
    return bucket_population_[hash];
  }

  /// Bytes of flat compiled state (CSR arrays + per-node records); the
  /// np.engine.compiled_graph_bytes gauge. Excludes the retained source
  /// graph, which is cold.
  std::size_t footprint_bytes() const;

  /// The wire-format graph this artifact was compiled from (what gets
  /// signed, serialized, and re-verified against the binary).
  const MonitoringGraph& source() const { return source_; }

 private:
  explicit CompiledGraph(MonitoringGraph graph);

  MonitoringGraph source_;
  std::uint32_t hash_buckets_ = 0;        // 2^hash_width
  std::vector<std::uint8_t> node_hash_;   // [num_nodes]
  std::vector<std::uint8_t> node_exit_;   // [num_nodes] 0/1
  // CSR offsets into edges_: entry [node * 2^w + h] opens the slice of
  // node's successors whose hash is h; [num_nodes * 2^w] closes the
  // last slice. Adjacent buckets (and adjacent nodes) share offsets, so
  // one flat array serves both bucket() and successors().
  std::vector<std::uint32_t> bucket_off_;  // [num_nodes * 2^w + 1]
  std::vector<std::uint32_t> edges_;       // successor node indices
  std::vector<std::uint32_t> succ_count_;  // [num_nodes] deduped degree
  std::vector<std::uint32_t> fast_next_;   // [num_nodes * 2^w]
  std::vector<std::uint32_t> bucket_population_;  // [kNumBuckets]
};

}  // namespace sdmmon::monitor

#endif  // SDMMON_MONITOR_COMPILED_GRAPH_HPP
